"""Periodic polling of every simulated device into time-series rings.

:class:`DeviceSampler` is the simulated-time analogue of the background
measurement thread a live monitoring agent would run next to a real
job (the continuous counter sampling of the companion measurement
paper, arXiv:2312.05102). Real sensors can only be read when the
process gets scheduled; here, device state is only observable at clock
event boundaries. The sampler therefore subscribes to every rank's
:class:`~repro.hardware.clock.VirtualClock` and takes one reading per
advance once at least one sampling period has elapsed — deterministic,
zero simulated-time perturbation of the measured code.

Per rank and period it records board power, SM clock, die temperature,
device utilization, cumulative energy and the thermal-throttle flag,
plus process-level stats (trace ring occupancy/drops, clock-set call
and vendor-error counters). From those it derives, incrementally:

* ``power_ema_w`` — exponentially smoothed power;
* ``energy_rate_w`` — instantaneous energy rate (dE/dt);
* ``rolling_edp_js`` — trailing-window energy x window span;
* ``clock_set_failure_rate`` — vendor errors per second.

When a clock advance spans more than ``gap_factor`` sampling periods
(a long kernel, a wedged phase), the unobservable interval is recorded
as a *sampler gap*: counted per rank, listed in :attr:`gaps`, emitted
on the telemetry faults track, and surfaced to the alert engine as the
``sampler_gap_ticks`` series — the monitoring layer tells you when it
was blind, instead of silently interpolating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..telemetry.events import TRACK_FAULTS
from ..telemetry.metrics import MetricsRegistry
from .series import DEFAULT_CAPACITY, Ema, RateTracker, TimeSeries, WindowDelta

#: Device-level series names, in display order.
DEVICE_SERIES = (
    "power_w",
    "clock_mhz",
    "temp_c",
    "utilization",
    "energy_j",
    "power_ema_w",
    "energy_rate_w",
    "rolling_edp_js",
    "throttle_active",
)

#: Process-level series names (rank 0 only).
PROCESS_SERIES = (
    "clock_set_failure_rate",
    "trace_events",
    "trace_dropped",
)


@dataclass(frozen=True)
class SamplerGap:
    """One interval the sampler could not observe on schedule."""

    rank: int
    t0_s: float
    t1_s: float
    missed_ticks: int


class DeviceSampler:
    """Samples every device of a cluster on its own simulated clock.

    Parameters
    ----------
    gpus / clocks:
        Per-rank devices and their rank-local clocks (equal length).
    period_s:
        Sampling contract in simulated seconds.
    capacity:
        Ring capacity of each :class:`TimeSeries`.
    telemetry:
        Optional :class:`~repro.telemetry.TraceCollector`; every sample
        is mirrored as a ``device`` counter event and gap instants land
        on the faults track. Its metrics registry is shared.
    controller:
        Optional :class:`~repro.core.controller.FrequencyController`;
        enables the clock-set failure-rate series.
    alerts:
        Optional :class:`~repro.monitor.alerts.AlertEngine`, fed one
        observation per sample.
    """

    def __init__(
        self,
        gpus: List,
        clocks: List,
        period_s: float = 0.05,
        capacity: int = DEFAULT_CAPACITY,
        telemetry=None,
        metrics: Optional[MetricsRegistry] = None,
        controller=None,
        alerts=None,
        ema_tau_s: float = 0.5,
        edp_window_s: float = 2.0,
        gap_factor: float = 4.0,
    ) -> None:
        if len(gpus) != len(clocks):
            raise ValueError("need one clock per device")
        if not gpus:
            raise ValueError("sampler needs at least one device")
        if period_s <= 0.0:
            raise ValueError("sampling period must be positive")
        if gap_factor < 1.0:
            raise ValueError("gap factor must be >= 1")
        self._gpus = list(gpus)
        self._clocks = list(clocks)
        self.period_s = period_s
        self.capacity = capacity
        self._telemetry = telemetry
        if metrics is not None:
            self.metrics = metrics
        elif telemetry is not None:
            self.metrics = telemetry.metrics
        else:
            self.metrics = MetricsRegistry()
        self._controller = controller
        self.alerts = alerts
        self.gap_factor = gap_factor
        self._series: Dict[Tuple[str, int], TimeSeries] = {}
        self._ema = [Ema(ema_tau_s) for _ in gpus]
        self._energy_rate = [RateTracker() for _ in gpus]
        self._edp_window = [WindowDelta(edp_window_s) for _ in gpus]
        self._failure_rate = RateTracker()
        self._last_sample_t: List[Optional[float]] = [None] * len(gpus)
        # Per-tick lookup caches: the registry returns stable objects
        # per (name, labels), so resolving them once keeps the sampling
        # hot path free of label-tuple construction (see
        # benchmarks/bench_monitor_overhead.py).
        self._gauges: Dict[Tuple[str, int], object] = {}
        self._sample_counters: Dict[int, object] = {}
        self._listeners: List = []
        self._running = False
        #: Unobservable intervals, chronological.
        self.gaps: List[SamplerGap] = []
        #: Samples taken across all ranks.
        self.samples_taken = 0

    @classmethod
    def for_cluster(cls, cluster, **kwargs) -> "DeviceSampler":
        """Sampler over every rank device of a built cluster."""
        return cls(gpus=cluster.gpus, clocks=cluster.clocks, **kwargs)

    @property
    def n_ranks(self) -> int:
        return len(self._gpus)

    @property
    def running(self) -> bool:
        return self._running

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Subscribe to every rank clock and take an immediate sample."""
        if self._running:
            raise RuntimeError("sampler is already running")
        self._running = True
        for rank, clock in enumerate(self._clocks):
            listener = self._make_listener(rank)
            self._listeners.append(listener)
            clock.subscribe(listener)
            self._sample(rank, clock.now)

    def stop(self) -> None:
        """Unsubscribe; a final sample pins the series at stop time."""
        if not self._running:
            raise RuntimeError("sampler is not running")
        for clock, listener in zip(self._clocks, self._listeners):
            clock.unsubscribe(listener)
        self._listeners = []
        self._running = False
        for rank, clock in enumerate(self._clocks):
            if self._last_sample_t[rank] != clock.now:
                self._sample(rank, clock.now)

    def _make_listener(self, rank: int):
        def on_advance(t0: float, t1: float) -> None:
            last = self._last_sample_t[rank]
            if last is None or t1 - last >= self.period_s - 1e-12:
                self._sample(rank, t1)

        return on_advance

    # -- sampling ----------------------------------------------------------

    def _sample(self, rank: int, t_s: float) -> None:
        gpu = self._gpus[rank]
        last = self._last_sample_t[rank]
        gap_ticks = 0
        if last is not None:
            elapsed = t_s - last
            if elapsed >= self.gap_factor * self.period_s:
                gap_ticks = int(elapsed / self.period_s) - 1
                self._record_gap(rank, last, t_s, gap_ticks)
        self._last_sample_t[rank] = t_s
        self.samples_taken += 1

        power_w = gpu.power_w()
        energy_j = gpu.energy_j
        values: Dict[str, float] = {
            "power_w": power_w,
            "clock_mhz": gpu.current_clock_hz / 1e6,
            "temp_c": gpu.temperature_c,
            "utilization": gpu.utilization(window_s=max(1.0, self.period_s)),
            "energy_j": energy_j,
            "throttle_active": 1.0 if gpu.thermal_throttle_active else 0.0,
            "power_ema_w": self._ema[rank].update(t_s, power_w),
            "energy_rate_w": self._energy_rate[rank].update(t_s, energy_j),
            "sampler_gap_ticks": float(gap_ticks),
        }
        window = self._edp_window[rank]
        windowed_j = window.update(t_s, energy_j)
        values["rolling_edp_js"] = windowed_j * max(
            window.span_s, self.period_s
        )

        if rank == 0:
            values.update(self._process_values(t_s))

        for name in DEVICE_SERIES:
            self._record(name, rank, t_s, values[name])
        if rank == 0:
            for name in PROCESS_SERIES:
                if name in values:
                    self._record(name, rank, t_s, values[name])

        for key, value in values.items():
            self._gauge(key, rank).set(value)
        counter = self._sample_counters.get(rank)
        if counter is None:
            counter = self._sample_counters[rank] = self.metrics.counter(
                "monitor_samples", rank=rank
            )
        counter.inc()

        if self._telemetry is not None:
            self._telemetry.emit_counter_sample(
                "device",
                rank,
                {
                    "power_w": values["power_w"],
                    "clock_mhz": values["clock_mhz"],
                    "temp_c": values["temp_c"],
                    "utilization": values["utilization"],
                },
                ts=t_s,
            )
        if self.alerts is not None:
            self.alerts.observe(rank, t_s, values)

    def _process_values(self, t_s: float) -> Dict[str, float]:
        values: Dict[str, float] = {}
        if self._controller is not None:
            values["clock_set_calls"] = float(self._controller.clock_set_calls)
            values["clock_set_failure_rate"] = self._failure_rate.update(
                t_s, float(self._controller.vendor_errors)
            )
        if self._telemetry is not None:
            values["trace_events"] = float(len(self._telemetry))
            values["trace_dropped"] = float(self._telemetry.dropped)
        return values

    def _record_gap(
        self, rank: int, t0: float, t1: float, missed: int
    ) -> None:
        self.gaps.append(
            SamplerGap(rank=rank, t0_s=t0, t1_s=t1, missed_ticks=missed)
        )
        self.metrics.counter("sampler_gaps", rank=rank).inc()
        self.metrics.counter("sampler_gap_ticks", rank=rank).inc(missed)
        if self._telemetry is not None:
            self._telemetry.emit_instant(
                "sampler-gap",
                rank,
                ts=t1,
                track=TRACK_FAULTS,
                t0_s=t0,
                missed_ticks=missed,
            )

    # -- external observations (PMT sampler feed) --------------------------

    def observe_external(
        self, series: str, rank: int, t_s: float, value: float
    ) -> None:
        """Record a sample produced by another observer (e.g. PMT)."""
        self._record(series, rank, t_s, value)
        self._gauge(series, rank).set(value)

    def observe_external_gap(
        self, rank: int, t0: float, t1: float
    ) -> None:
        """A gap reported by another observer feeds the same alert rule."""
        missed = max(int((t1 - t0) / self.period_s), 1)
        self._record_gap(rank, t0, t1, missed)
        if self.alerts is not None:
            self.alerts.observe(
                rank, t1, {"sampler_gap_ticks": float(missed)}
            )

    # -- series access -----------------------------------------------------

    def _gauge(self, key: str, rank: int):
        gauge = self._gauges.get((key, rank))
        if gauge is None:
            gauge = self._gauges[(key, rank)] = self.metrics.gauge(
                f"monitor_{key}", rank=rank
            )
        return gauge

    def _record(self, name: str, rank: int, t_s: float, value: float) -> None:
        key = (name, rank)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(self.capacity)
        series.append(t_s, value)

    def series(self, name: str, rank: int = 0) -> TimeSeries:
        """One series (empty if never sampled)."""
        key = (name, rank)
        if key not in self._series:
            self._series[key] = TimeSeries(self.capacity)
        return self._series[key]

    def series_names(self) -> List[Tuple[str, int]]:
        """All populated ``(name, rank)`` series keys, sorted."""
        return sorted(self._series)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every series as plain dicts, keyed ``name[rank]``."""
        return {
            f"{name}[{rank}]": self._series[(name, rank)].to_dict()
            for name, rank in self.series_names()
        }
