"""The :class:`Monitor` facade: one object wiring the whole layer.

Everything in ``repro.monitor`` composes from small parts (sampler,
alert engine, exposition, report); the facade is the one-call way the
CLI and :class:`~repro.sph.simulation.Simulation` use them together:

.. code-block:: python

    monitor = Monitor(MonitorConfig(period_s=0.02), telemetry=collector)
    monitor.bind_cluster(cluster, controller=controller)
    monitor.start()
    ...  # run the simulation
    monitor.stop()
    monitor.write_prom("metrics.prom")
    monitor.write_report("report.html", report=energy_report)

The config mirrors the knobs of the underlying components so callers
tune one dataclass instead of four constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from .alerts import (
    DEFAULT_STALL_AFTER_S,
    Alert,
    AlertEngine,
    AlertRule,
    default_rules,
)
from .exposition import (
    MetricsServer,
    comm_gauges,
    render_prometheus,
    write_prom_file,
)
from .report import build_report, write_html_report, write_json_snapshot
from .sampler import DeviceSampler
from .series import DEFAULT_CAPACITY


@dataclass
class MonitorConfig:
    """Tuning knobs for the whole monitoring layer."""

    #: Sampling contract in simulated seconds.
    period_s: float = 0.05
    #: Ring capacity per time series.
    capacity: int = DEFAULT_CAPACITY
    #: Time constant of the power EMA.
    ema_tau_s: float = 0.5
    #: Trailing window of the rolling-EDP series.
    edp_window_s: float = 2.0
    #: A clock advance spanning this many periods counts as a gap.
    gap_factor: float = 4.0
    #: Power-cap proximity rule threshold, as a fraction of the envelope.
    power_cap_frac: float = 0.95
    #: Heartbeat age after which a campaign worker counts as stalled.
    stall_after_s: float = DEFAULT_STALL_AFTER_S
    #: Extra rules installed alongside :func:`default_rules`.
    extra_rules: List[AlertRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ValueError("sampling period must be positive")
        if not 0.0 < self.power_cap_frac <= 1.0:
            raise ValueError("power cap fraction must be in (0, 1]")


class Monitor:
    """Owns a sampler + alert engine bound to one cluster/run."""

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        telemetry=None,
        on_alert: Optional[Callable[[Alert, str], None]] = None,
    ) -> None:
        self.config = config or MonitorConfig()
        self.telemetry = telemetry
        self.on_alert = on_alert
        self.sampler: Optional[DeviceSampler] = None
        self.engine: Optional[AlertEngine] = None
        self._server: Optional[MetricsServer] = None
        self._cluster = None

    # -- wiring ------------------------------------------------------------

    def bind_cluster(self, cluster, controller=None) -> "Monitor":
        """Build the sampler + engine over a cluster's devices.

        Installs :func:`default_rules` (using the cluster's GPU spec for
        the power-cap rule) plus any :attr:`MonitorConfig.extra_rules`.
        Idempotent rebind is an error — one monitor per run.
        """
        if self.sampler is not None:
            raise RuntimeError("monitor is already bound to a cluster")
        # Kept for the exposition/report paths: the communicator's
        # per-rank wait counters live on the cluster, not the sampler.
        self._cluster = cluster
        cfg = self.config
        spec = cluster.gpus[0].spec if cluster.gpus else None
        rules = default_rules(
            gpu_spec=spec, power_cap_frac=cfg.power_cap_frac
        ) + list(cfg.extra_rules)
        self.engine = AlertEngine(
            rules, telemetry=self.telemetry, on_alert=self.on_alert
        )
        self.sampler = DeviceSampler.for_cluster(
            cluster,
            period_s=cfg.period_s,
            capacity=cfg.capacity,
            telemetry=self.telemetry,
            controller=controller,
            alerts=self.engine,
            ema_tau_s=cfg.ema_tau_s,
            edp_window_s=cfg.edp_window_s,
            gap_factor=cfg.gap_factor,
        )
        return self

    def bind_controller(self, controller) -> None:
        """Late-bind the frequency controller (failure-rate series)."""
        if self.sampler is None:
            raise RuntimeError("bind a cluster before a controller")
        self.sampler._controller = controller

    # -- lifecycle ---------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self.sampler is not None

    @property
    def running(self) -> bool:
        return self.sampler is not None and self.sampler.running

    def start(self) -> None:
        if self.sampler is None:
            raise RuntimeError("monitor is not bound to a cluster")
        self.sampler.start()

    def stop(self) -> None:
        if self.sampler is None:
            raise RuntimeError("monitor is not bound to a cluster")
        if self.sampler.running:
            self.sampler.stop()

    # -- alerts ------------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        return list(self.engine.alerts) if self.engine is not None else []

    def fired(self, rule_name: str) -> List[Alert]:
        if self.engine is None:
            return []
        return self.engine.fired(rule_name)

    # -- outputs -----------------------------------------------------------

    def _require_sampler(self) -> DeviceSampler:
        if self.sampler is None:
            raise RuntimeError("monitor is not bound to a cluster")
        return self.sampler

    def _comm_stats(self):
        """The bound cluster's communicator counters, if any."""
        return getattr(getattr(self._cluster, "comm", None), "stats", None)

    def snapshot(
        self,
        collector=None,
        report=None,
        title: str = "repro monitored run",
        meta: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """The JSON-able report payload (series, alerts, metrics...)."""
        return build_report(
            self._require_sampler(),
            engine=self.engine,
            collector=collector if collector is not None else self.telemetry,
            report=report,
            title=title,
            meta=meta,
            comm=self._comm_stats(),
        )

    def prometheus(self) -> str:
        """Current registry + live series as Prometheus text."""
        sampler = self._require_sampler()
        comm = self._comm_stats()
        return render_prometheus(
            sampler.metrics,
            extra_gauges=comm_gauges(comm) if comm is not None else None,
        )

    def write_prom(self, path: str) -> None:
        write_prom_file(path, self.prometheus())

    def write_report(
        self,
        path: str,
        collector=None,
        report=None,
        title: str = "repro monitored run",
        meta: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Write the self-contained HTML report; returns the HTML."""
        data = self.snapshot(
            collector=collector, report=report, title=title, meta=meta
        )
        return write_html_report(path, data)

    def write_snapshot(self, path: str, **kwargs) -> None:
        write_json_snapshot(path, self.snapshot(**kwargs))

    # -- live endpoint -----------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
        """Start the ``/metrics`` endpoint (daemon thread); returns it."""
        if self._server is not None and self._server.running:
            raise RuntimeError("metrics server is already running")
        self._server = MetricsServer(
            self.prometheus, host=host, port=port
        ).start()
        return self._server

    def stop_serving(self) -> None:
        if self._server is not None and self._server.running:
            self._server.stop()
        self._server = None
