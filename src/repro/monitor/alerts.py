"""Declarative alert rules over the monitored series.

An :class:`AlertRule` names a monitored series, a comparison against a
threshold, and optionally a *for-duration*: the condition must hold
continuously for ``for_s`` simulated seconds before the alert fires —
the standard guard against one-sample blips, exactly Prometheus'
``for:`` clause. ``mode="rate"`` evaluates the rule against the
difference quotient of the series instead of its value, for rules like
"clock-set failures per second".

The :class:`AlertEngine` is fed one observation per sampler tick. It
keeps per-``(rule, rank)`` pending state, emits ``alert-fired`` /
``alert-resolved`` instants into the telemetry faults track, counts
``alerts_fired{rule=...}`` in the metrics registry, and invokes an
optional callback — the integration point for operators who want pager
semantics out of a simulated soak run.

:func:`default_rules` builds the stock rule set of the paper's
operational concerns: thermal clock throttling (the silent killer of a
pinned-clock energy experiment), power-cap proximity, sampler gaps
(unobserved intervals longer than the sampling contract) and sustained
clock-set failures. Campaign worker stalls are wall-clock phenomena
judged from heartbeat files instead — see :func:`stalled_worker_alerts`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..telemetry.events import TRACK_FAULTS

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Default heartbeat age after which a campaign worker counts as stalled.
DEFAULT_STALL_AFTER_S = 120.0


@dataclass(frozen=True)
class AlertRule:
    """One declarative condition over a monitored series."""

    name: str
    series: str
    op: str
    threshold: float
    #: Condition must hold continuously this long before firing.
    for_s: float = 0.0
    #: ``"value"`` compares the sample; ``"rate"`` its d/dt.
    mode: str = "value"
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule needs a name")
        if self.op not in _OPS:
            known = ", ".join(sorted(_OPS))
            raise ValueError(f"unknown comparison {self.op!r} (known: {known})")
        if self.for_s < 0.0:
            raise ValueError("for-duration must be non-negative")
        if self.mode not in ("value", "rate"):
            raise ValueError("rule mode must be 'value' or 'rate'")

    def condition(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        quantity = self.series if self.mode == "value" else f"d({self.series})/dt"
        clause = f"{quantity} {self.op} {self.threshold:g}"
        if self.for_s > 0.0:
            clause += f" for {self.for_s:g}s"
        return clause


@dataclass
class Alert:
    """One firing (and possibly resolved) instance of a rule on a rank."""

    rule: AlertRule
    rank: int
    t_start_s: float  #: When the condition first held.
    t_fired_s: float  #: When the for-duration was satisfied.
    value: float  #: Observed value at fire time.
    t_resolved_s: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.t_resolved_s is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule.name,
            "severity": self.rule.severity,
            "rank": self.rank,
            "series": self.rule.series,
            "condition": self.rule.describe(),
            "t_start_s": self.t_start_s,
            "t_fired_s": self.t_fired_s,
            "t_resolved_s": self.t_resolved_s,
            "value": self.value,
        }


@dataclass
class _RuleState:
    pending_since: Optional[float] = None
    active: Optional[Alert] = None
    last: Optional[Tuple[float, float]] = None  # (t, value) for rate mode


class AlertEngine:
    """Evaluates a rule set against the sampler's observation stream."""

    def __init__(
        self,
        rules: List[AlertRule],
        telemetry=None,
        on_alert: Optional[Callable[[Alert, str], None]] = None,
    ) -> None:
        names = [r.name for r in rules]
        if len(names) != len(set(names)):
            raise ValueError("alert rule names must be unique")
        self.rules = list(rules)
        self.telemetry = telemetry
        self.on_alert = on_alert
        #: Every alert ever fired, chronological.
        self.alerts: List[Alert] = []
        self._state: Dict[Tuple[str, int], _RuleState] = {}

    # -- evaluation --------------------------------------------------------

    def observe(
        self, rank: int, t_s: float, values: Mapping[str, float]
    ) -> List[Alert]:
        """Feed one tick of series values; returns alerts fired this tick."""
        fired: List[Alert] = []
        for rule in self.rules:
            if rule.series not in values:
                continue
            state = self._state.setdefault(
                (rule.name, rank), _RuleState()
            )
            value = float(values[rule.series])
            if rule.mode == "rate":
                prev = state.last
                state.last = (t_s, value)
                if prev is None:
                    continue
                dt = t_s - prev[0]
                value = (value - prev[1]) / dt if dt > 0.0 else 0.0
            if rule.condition(value):
                if state.pending_since is None:
                    state.pending_since = t_s
                held = t_s - state.pending_since
                if state.active is None and held >= rule.for_s:
                    alert = Alert(
                        rule=rule,
                        rank=rank,
                        t_start_s=state.pending_since,
                        t_fired_s=t_s,
                        value=value,
                    )
                    state.active = alert
                    self.alerts.append(alert)
                    fired.append(alert)
                    self._emit(alert, "fired")
            else:
                state.pending_since = None
                if state.active is not None:
                    state.active.t_resolved_s = t_s
                    self._emit(state.active, "resolved")
                    state.active = None
        return fired

    def _emit(self, alert: Alert, transition: str) -> None:
        if self.telemetry is not None:
            ts = (
                alert.t_fired_s
                if transition == "fired"
                else alert.t_resolved_s
            )
            # Exemplar-style correlation: when the collector runs under
            # a trace context, the alert instant and the fired counter
            # both carry the trace id, so a scrape that shows an alert
            # leads straight to the exact merged trace of that run.
            context = getattr(self.telemetry, "context", None)
            extra: Dict[str, object] = {}
            if context is not None:
                extra["trace_id"] = context.trace_id
            self.telemetry.emit_instant(
                f"alert-{transition}",
                alert.rank,
                ts=ts,
                track=TRACK_FAULTS,
                rule=alert.rule.name,
                severity=alert.rule.severity,
                value=alert.value,
                **extra,
            )
            if transition == "fired":
                labels = {"rule": alert.rule.name}
                if context is not None:
                    labels["trace_id"] = context.trace_id
                self.telemetry.metrics.counter(
                    "alerts_fired", **labels
                ).inc()
        if self.on_alert is not None:
            self.on_alert(alert, transition)

    # -- queries -----------------------------------------------------------

    @property
    def active_alerts(self) -> List[Alert]:
        return [a for a in self.alerts if a.active]

    def fired(self, rule_name: str) -> List[Alert]:
        return [a for a in self.alerts if a.rule.name == rule_name]


def default_rules(
    gpu_spec=None,
    power_cap_frac: float = 0.95,
    power_cap_for_s: float = 0.5,
    failure_rate_per_s: float = 0.0,
) -> List[AlertRule]:
    """The stock rule set the CLI and Simulation wiring install.

    ``gpu_spec`` supplies the board power envelope for the power-cap
    rule; without one the rule is omitted (there is no cap to compare
    against).
    """
    rules = [
        AlertRule(
            name="clock_throttle_detected",
            series="throttle_active",
            op=">=",
            threshold=1.0,
            severity="critical",
            description=(
                "the die is hot enough that the requested clock is "
                "being capped — pinned-clock energy numbers are invalid"
            ),
        ),
        AlertRule(
            name="sampler_gap",
            series="sampler_gap_ticks",
            op=">",
            threshold=0.0,
            description=(
                "an interval longer than the sampling contract passed "
                "with no observable device state"
            ),
        ),
        AlertRule(
            name="clock_set_failures",
            series="clock_set_failure_rate",
            op=">",
            threshold=failure_rate_per_s,
            description=(
                "management-library clock sets are failing (retries "
                "and/or breaker pressure)"
            ),
        ),
    ]
    if gpu_spec is not None:
        rules.insert(1, AlertRule(
            name="power_cap_proximity",
            series="power_ema_w",
            op=">=",
            threshold=power_cap_frac * gpu_spec.max_power_w,
            for_s=power_cap_for_s,
            description=(
                f"smoothed board power within {100 * (1 - power_cap_frac):.0f}% "
                "of the power envelope"
            ),
        ))
    return rules


#: Rule identity used for campaign worker stalls (wall-clock, heartbeat
#: driven — not evaluated by the engine).
WORKER_STALL_RULE = AlertRule(
    name="campaign_worker_stalled",
    series="heartbeat_age_s",
    op=">=",
    threshold=DEFAULT_STALL_AFTER_S,
    severity="critical",
    description="a campaign worker lane has not reported progress",
)


def stalled_worker_alerts(
    heartbeats: Mapping[str, Mapping[str, object]],
    now_s: float,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
) -> List[Alert]:
    """Judge campaign worker heartbeats against the stall rule.

    ``heartbeats`` is the parsed ``heartbeats.json`` of a campaign
    directory (lane -> {"updated_s": epoch, ...}); lanes marked
    ``"state": "idle"`` are exempt (the campaign finished or the lane
    drained its queue).
    """
    rule = AlertRule(
        name=WORKER_STALL_RULE.name,
        series=WORKER_STALL_RULE.series,
        op=WORKER_STALL_RULE.op,
        threshold=stall_after_s,
        severity=WORKER_STALL_RULE.severity,
        description=WORKER_STALL_RULE.description,
    )
    alerts: List[Alert] = []
    for lane, record in sorted(heartbeats.items()):
        if record.get("state") == "idle":
            continue
        updated = float(record.get("updated_s", 0.0))
        age = now_s - updated
        if rule.condition(age):
            alerts.append(
                Alert(
                    rule=rule,
                    rank=int(lane),
                    t_start_s=updated,
                    t_fired_s=now_s,
                    value=age,
                )
            )
    return alerts
