"""Fixed-capacity downsampling time series and incremental derivations.

The live monitoring layer must hold hours of samples in bounded memory
without losing the shape of the signal. :class:`TimeSeries` solves this
the way production monitoring agents do: a ring of *buckets* rather
than raw points. While the series fits, every sample is its own bucket;
once the ring reaches capacity, adjacent buckets are merged pairwise
and the aggregation stride doubles, so the series always spans the
whole run at progressively coarser (but mean/min/max-preserving)
resolution. Samples folded into a shared bucket are counted in
:attr:`TimeSeries.aggregated` — drop accounting that mirrors the trace
collector's ``trace_events_dropped``, except nothing disappears: the
envelope of the signal survives.

The module also provides the small incremental estimators the
:class:`~repro.monitor.sampler.DeviceSampler` derives its rolling
series from: an irregular-interval exponential moving average, a
difference-quotient rate tracker and a trailing-window delta (for
rolling energy and EDP). All are O(1) per sample (the window tracker
amortized), so monitoring cost does not grow with run length.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: Default ring capacity: plenty for a sparkline, bounded for a soak run.
DEFAULT_CAPACITY = 256


@dataclass
class Bucket:
    """Aggregate of one or more consecutive samples."""

    t_s: float  #: Timestamp of the newest sample in the bucket.
    mean: float
    min_v: float
    max_v: float
    last: float
    n: int

    @classmethod
    def of(cls, t_s: float, value: float) -> "Bucket":
        return cls(t_s=t_s, mean=value, min_v=value, max_v=value,
                   last=value, n=1)

    def absorb(self, other: "Bucket") -> None:
        """Merge a newer bucket into this one."""
        total = self.n + other.n
        self.mean = (self.mean * self.n + other.mean * other.n) / total
        self.min_v = min(self.min_v, other.min_v)
        self.max_v = max(self.max_v, other.max_v)
        self.last = other.last
        self.t_s = other.t_s
        self.n = total


class TimeSeries:
    """A bounded, self-downsampling series of ``(time, value)`` samples.

    Parameters
    ----------
    capacity:
        Maximum number of buckets held. Must be at least 2 (compaction
        merges pairs). Memory use is O(capacity) regardless of how many
        samples are appended.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("series capacity must be >= 2")
        self.capacity = capacity
        self._buckets: Deque[Bucket] = deque()
        #: Samples aggregated per stored bucket (doubles per compaction).
        self.stride = 1
        self._pending: Optional[Bucket] = None
        #: Total samples ever appended.
        self.n_samples = 0
        #: Pairwise-merge passes performed (resolution halvings).
        self.compactions = 0

    def append(self, t_s: float, value: float) -> None:
        """Record one sample (timestamps must be non-decreasing)."""
        self.n_samples += 1
        value = float(value)
        pending = self._pending
        if pending is None:
            pending = self._pending = Bucket.of(t_s, value)
        else:
            # Single-sample absorb, inlined: this runs once per sample
            # on the monitoring hot path.
            n = pending.n
            pending.mean = (pending.mean * n + value) / (n + 1)
            if value < pending.min_v:
                pending.min_v = value
            elif value > pending.max_v:
                pending.max_v = value
            pending.last = value
            pending.t_s = t_s
            pending.n = n + 1
        if pending.n >= self.stride:
            self._buckets.append(pending)
            self._pending = None
            if len(self._buckets) >= self.capacity:
                self._compact()

    def _compact(self) -> None:
        """Halve resolution: merge adjacent bucket pairs, double stride."""
        merged: Deque[Bucket] = deque()
        buckets = list(self._buckets)
        for i in range(0, len(buckets) - 1, 2):
            first, second = buckets[i], buckets[i + 1]
            first.absorb(second)
            merged.append(first)
        if len(buckets) % 2:
            merged.append(buckets[-1])
        self._buckets = merged
        self.stride *= 2
        self.compactions += 1

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buckets) + (1 if self._pending is not None else 0)

    @property
    def empty(self) -> bool:
        return self.n_samples == 0

    @property
    def aggregated(self) -> int:
        """Samples no longer stored as individual points (drop accounting)."""
        return self.n_samples - len(self)

    def buckets(self) -> List[Bucket]:
        """All buckets, oldest first (including the partial tail)."""
        out = list(self._buckets)
        if self._pending is not None:
            out.append(self._pending)
        return out

    def points(self) -> List[Tuple[float, float]]:
        """``(t, mean)`` pairs, the sparkline-friendly view."""
        return [(b.t_s, b.mean) for b in self.buckets()]

    @property
    def last(self) -> Optional[float]:
        b = self.buckets()
        return b[-1].last if b else None

    @property
    def last_t_s(self) -> Optional[float]:
        b = self.buckets()
        return b[-1].t_s if b else None

    @property
    def min(self) -> Optional[float]:
        b = self.buckets()
        return min(x.min_v for x in b) if b else None

    @property
    def max(self) -> Optional[float]:
        b = self.buckets()
        return max(x.max_v for x in b) if b else None

    @property
    def mean(self) -> Optional[float]:
        b = self.buckets()
        if not b:
            return None
        total = sum(x.mean * x.n for x in b)
        return total / sum(x.n for x in b)

    def to_dict(self) -> Dict[str, object]:
        """Snapshot for JSON export and the HTML report."""
        return {
            "n_samples": self.n_samples,
            "stride": self.stride,
            "aggregated": self.aggregated,
            "compactions": self.compactions,
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "points": [[b.t_s, b.mean] for b in self.buckets()],
        }


class Ema:
    """Exponential moving average over irregularly spaced samples.

    The effective smoothing constant adapts to the sample spacing:
    ``alpha = 1 - exp(-dt / tau)``, so a burst of dense samples and a
    sparse trickle converge to the same time-weighted average.
    """

    def __init__(self, tau_s: float) -> None:
        if tau_s <= 0.0:
            raise ValueError("EMA time constant must be positive")
        self.tau_s = tau_s
        self.value: Optional[float] = None
        self._last_t: Optional[float] = None

    def update(self, t_s: float, sample: float) -> float:
        if self.value is None or self._last_t is None:
            self.value = float(sample)
        else:
            dt = max(t_s - self._last_t, 0.0)
            alpha = 1.0 - math.exp(-dt / self.tau_s) if dt > 0.0 else 0.0
            self.value += alpha * (sample - self.value)
        self._last_t = t_s
        return self.value


class RateTracker:
    """Difference quotient of a cumulative counter: ``d(value)/dt``."""

    def __init__(self) -> None:
        self._last: Optional[Tuple[float, float]] = None
        self.rate = 0.0

    def update(self, t_s: float, cumulative: float) -> float:
        if self._last is not None:
            t0, v0 = self._last
            dt = t_s - t0
            self.rate = (cumulative - v0) / dt if dt > 0.0 else 0.0
        self._last = (t_s, cumulative)
        return self.rate


class WindowDelta:
    """Increase of a cumulative quantity over a trailing time window.

    Feeding it a cumulative energy counter yields windowed joules; the
    sampler multiplies by the window span to get a rolling EDP. The
    deque holds only samples inside the window, so memory is bounded by
    window / sampling period.
    """

    def __init__(self, window_s: float) -> None:
        if window_s <= 0.0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._samples: Deque[Tuple[float, float]] = deque()

    def update(self, t_s: float, cumulative: float) -> float:
        self._samples.append((t_s, cumulative))
        lo = t_s - self.window_s
        while len(self._samples) > 1 and self._samples[1][0] <= lo:
            self._samples.popleft()
        return cumulative - self._samples[0][1]

    @property
    def span_s(self) -> float:
        """Time actually covered (shorter than the window early on)."""
        if len(self._samples) < 2:
            return 0.0
        return self._samples[-1][0] - self._samples[0][0]
