"""Self-contained single-file HTML run reports.

One HTML file, zero external references: styles inline, every chart an
inline SVG. The report is the shareable artifact of a monitored run —
the Fig. 4–7 view of the paper (power / clock / temperature / energy
evolving over the run) plus the operational layer this subsystem adds:

* a sparkline card per recorded time series (mean line over a min/max
  band, with the downsampling drop accounting in the caption);
* an alert timeline — every fired rule as a bar from fire to resolve
  time over the run span;
* sampler-gap inventory (when the monitor was blind, and for how long);
* the per-function energy table reconciled against the independently
  gathered :class:`~repro.core.energy.EnergyReport`;
* the metrics-registry snapshot.

:func:`build_report` produces a plain JSON-able dict (also what
``repro monitor snapshot --json`` emits); :func:`render_html` turns it
into the page; :func:`write_html_report` writes atomically.
"""

from __future__ import annotations

import html
import json
import os
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry.summary import (
    RECONCILE_TOL_S,
    max_drift_s,
    reconcile_with_report,
)

#: Series rendered first, in this order, when present (rank 0 view).
PREFERRED_SERIES = (
    "power_w",
    "clock_mhz",
    "temp_c",
    "utilization",
    "energy_j",
    "power_ema_w",
    "energy_rate_w",
    "rolling_edp_js",
)

_UNITS = {
    "power_w": "W",
    "power_ema_w": "W",
    "energy_rate_w": "W",
    "pmt_power_w": "W",
    "clock_mhz": "MHz",
    "temp_c": "°C",
    "utilization": "frac",
    "energy_j": "J",
    "rolling_edp_js": "J·s",
    "throttle_active": "bool",
    "clock_set_failure_rate": "1/s",
    "trace_events": "events",
    "trace_dropped": "events",
}

_SEVERITY_COLOR = {"critical": "#c0392b", "warning": "#e67e22"}


# ---------------------------------------------------------------------------
# Data assembly
# ---------------------------------------------------------------------------

def build_report(
    sampler,
    engine=None,
    collector=None,
    report=None,
    title: str = "repro monitored run",
    meta: Optional[Mapping[str, object]] = None,
    comm=None,
) -> Dict[str, object]:
    """Assemble the JSON-able report payload from monitor components.

    ``sampler`` is a :class:`~repro.monitor.sampler.DeviceSampler`;
    ``engine`` the optional alert engine, ``collector`` the trace
    collector (for the metrics snapshot and reconciliation), ``report``
    an optional gathered :class:`EnergyReport`, ``comm`` the optional
    communicator :class:`~repro.mpi.comm.CommStats` (or its dict form)
    for the per-rank collective-wait section.
    """
    series: List[Dict[str, object]] = []
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for name, rank in sampler.series_names():
        ts = sampler.series(name, rank)
        if ts.empty:
            continue
        buckets = ts.buckets()
        entry = {
            "name": name,
            "rank": rank,
            "unit": _UNITS.get(name, ""),
            "n_samples": ts.n_samples,
            "stride": ts.stride,
            "aggregated": ts.aggregated,
            "compactions": ts.compactions,
            "last": ts.last,
            "min": ts.min,
            "max": ts.max,
            "mean": ts.mean,
            "points": [[b.t_s, b.mean, b.min_v, b.max_v] for b in buckets],
        }
        series.append(entry)
        t0, t1 = buckets[0].t_s, buckets[-1].t_s
        t_min = t0 if t_min is None else min(t_min, t0)
        t_max = t1 if t_max is None else max(t_max, t1)

    series.sort(key=lambda s: (_series_order(s["name"]), s["rank"]))

    alerts: List[Dict[str, object]] = []
    rules: List[Dict[str, object]] = []
    if engine is not None:
        alerts = [a.to_dict() for a in engine.alerts]
        rules = [
            {
                "name": r.name,
                "condition": r.describe(),
                "severity": r.severity,
                "description": r.description,
            }
            for r in engine.rules
        ]

    gaps = [
        {
            "rank": g.rank,
            "t0_s": g.t0_s,
            "t1_s": g.t1_s,
            "missed_ticks": g.missed_ticks,
        }
        for g in sampler.gaps
    ]

    functions: List[Dict[str, object]] = []
    reconciliation: Dict[str, object] = {}
    if report is not None:
        aggregated = report.aggregate_functions()
        drift_by_fn: Dict[str, Dict[str, object]] = {}
        if collector is not None:
            rows = reconcile_with_report(collector.events, report)
            reconciliation = {
                "max_drift_s": max_drift_s(rows),
                "tolerance_s": RECONCILE_TOL_S,
                "ok": all(r.ok() for r in rows),
            }
            drift_by_fn = {
                r.function: {
                    "trace_time_s": r.trace_time_s,
                    "drift_s": r.drift_s,
                    "ok": r.ok(),
                }
                for r in rows
            }
        for name in sorted(
            aggregated, key=lambda n: -aggregated[n].total_j
        ):
            rec = aggregated[name]
            row: Dict[str, object] = {
                "function": name,
                "calls": rec.calls,
                "time_s": rec.time_s,
                "gpu_j": rec.gpu_j,
                "total_j": rec.total_j,
            }
            row.update(drift_by_fn.get(name, {}))
            functions.append(row)

    comm_doc: Dict[str, object] = {}
    if comm is not None:
        comm_doc = dict(
            comm.state_dict() if hasattr(comm, "state_dict") else comm
        )

    return {
        "schema": 1,
        "kind": "monitor-report",
        "title": title,
        "meta": dict(meta) if meta else {},
        "t_min_s": t_min,
        "t_max_s": t_max,
        "n_ranks": sampler.n_ranks,
        "period_s": sampler.period_s,
        "samples_taken": sampler.samples_taken,
        "series": series,
        "rules": rules,
        "alerts": alerts,
        "gaps": gaps,
        "functions": functions,
        "reconciliation": reconciliation,
        "comm": comm_doc,
        "metrics": sampler.metrics.snapshot(),
    }


def _series_order(name: str) -> int:
    try:
        return PREFERRED_SERIES.index(name)
    except ValueError:
        return len(PREFERRED_SERIES)


# ---------------------------------------------------------------------------
# SVG helpers
# ---------------------------------------------------------------------------

def _sparkline_svg(
    points: Sequence[Sequence[float]],
    t_range: Tuple[float, float],
    width: int = 260,
    height: int = 56,
    pad: int = 4,
) -> str:
    """Mean polyline over a min/max band for one series."""
    t0, t1 = t_range
    t_span = (t1 - t0) or 1.0
    vmin = min(p[2] for p in points)
    vmax = max(p[3] for p in points)
    if vmax == vmin:
        vmin -= 0.5
        vmax += 0.5
    v_span = vmax - vmin

    def sx(t: float) -> float:
        return pad + (t - t0) / t_span * (width - 2 * pad)

    def sy(v: float) -> float:
        return pad + (vmax - v) / v_span * (height - 2 * pad)

    line = " ".join(f"{sx(p[0]):.1f},{sy(p[1]):.1f}" for p in points)
    upper = [f"{sx(p[0]):.1f},{sy(p[3]):.1f}" for p in points]
    lower = [f"{sx(p[0]):.1f},{sy(p[2]):.1f}" for p in reversed(points)]
    band = " ".join(upper + lower)
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">'
        f'<polygon points="{band}" fill="#3498db" fill-opacity="0.18" '
        f'stroke="none"/>'
        f'<polyline points="{line}" fill="none" stroke="#2c3e50" '
        f'stroke-width="1.4"/>'
        f"</svg>"
    )


def _timeline_svg(
    alerts: Sequence[Mapping[str, object]],
    t_range: Tuple[float, float],
    width: int = 680,
    row_h: int = 22,
    label_w: int = 230,
    pad: int = 6,
) -> str:
    """Alert bars (fire → resolve) over the run span, one row per alert."""
    t0, t1 = t_range
    t_span = (t1 - t0) or 1.0
    height = row_h * len(alerts) + 2 * pad + 18

    def sx(t: float) -> float:
        frac = min(max((t - t0) / t_span, 0.0), 1.0)
        return label_w + frac * (width - label_w - pad)

    parts = [
        f'<svg class="timeline" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">'
    ]
    axis_y = height - 14
    parts.append(
        f'<line x1="{label_w}" y1="{axis_y}" x2="{width - pad}" '
        f'y2="{axis_y}" stroke="#95a5a6" stroke-width="1"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        t = t0 + frac * t_span
        x = label_w + frac * (width - label_w - pad)
        parts.append(
            f'<text x="{x:.1f}" y="{height - 2}" font-size="10" '
            f'fill="#7f8c8d" text-anchor="middle">{t:.2f}s</text>'
        )
    for i, alert in enumerate(alerts):
        y = pad + i * row_h
        fired = float(alert["t_fired_s"])
        resolved = alert.get("t_resolved_s")
        end = float(resolved) if resolved is not None else t1
        x0, x1 = sx(fired), max(sx(end), sx(fired) + 3.0)
        color = _SEVERITY_COLOR.get(str(alert["severity"]), "#e67e22")
        label = f'{alert["rule"]} (rank {alert["rank"]})'
        parts.append(
            f'<text x="0" y="{y + row_h - 8}" font-size="11" '
            f'fill="#2c3e50">{html.escape(label)}</text>'
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 4}" width="{x1 - x0:.1f}" '
            f'height="{row_h - 10}" rx="2" fill="{color}" '
            f'fill-opacity="0.85"/>'
        )
        if resolved is None:
            parts.append(
                f'<text x="{x1 + 4:.1f}" y="{y + row_h - 8}" font-size="10" '
                f'fill="{color}">active</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# HTML rendering
# ---------------------------------------------------------------------------

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; color: #2c3e50;
       margin: 2em auto; max-width: 960px; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em;
     border-bottom: 1px solid #ecf0f1; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { padding: 0.25em 0.8em; text-align: right;
         border-bottom: 1px solid #ecf0f1; }
th { background: #f8f9fa; } td:first-child, th:first-child
   { text-align: left; font-family: ui-monospace, monospace; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8em; }
.card { border: 1px solid #ecf0f1; border-radius: 6px; padding: 0.6em;
        background: #fff; }
.card .name { font-weight: 600; font-family: ui-monospace, monospace; }
.card .stats { color: #7f8c8d; font-size: 11px; }
.ok { color: #27ae60; } .bad { color: #c0392b; font-weight: 600; }
.meta { color: #7f8c8d; }
.none { color: #95a5a6; font-style: italic; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: object, digits: int = 4) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def render_html(data: Mapping[str, object]) -> str:
    """Render the report payload into one self-contained HTML page."""
    t0 = data.get("t_min_s") or 0.0
    t1 = data.get("t_max_s") or (t0 + 1.0)
    t_range = (float(t0), float(t1))

    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(data['title'])}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(data['title'])}</h1>",
        '<p class="meta">'
        f"{data['n_ranks']} rank(s) · sampling period "
        f"{_fmt(data['period_s'])} s · {data['samples_taken']} samples · "
        f"span {_fmt(t_range[0])}–{_fmt(t_range[1])} s</p>",
    ]
    meta = data.get("meta") or {}
    if meta:
        rows = "".join(
            f"<tr><td>{_esc(k)}</td><td>{_esc(v)}</td></tr>"
            for k, v in sorted(meta.items())
        )
        out.append(f"<table>{rows}</table>")

    out.append("<h2>Time series</h2>")
    series = data.get("series") or []
    if series:
        out.append('<div class="cards">')
        for entry in series:
            spark = _sparkline_svg(entry["points"], t_range)
            caption = (
                f"last {_fmt(entry['last'])} · min {_fmt(entry['min'])} · "
                f"max {_fmt(entry['max'])} · mean {_fmt(entry['mean'])}"
            )
            agg = (
                f" · {entry['aggregated']} of {entry['n_samples']} samples "
                f"aggregated (stride {entry['stride']})"
                if entry["aggregated"]
                else f" · {entry['n_samples']} samples"
            )
            unit = f" [{entry['unit']}]" if entry["unit"] else ""
            out.append(
                '<div class="card">'
                f'<div class="name">{_esc(entry["name"])}'
                f"{_esc(unit)} · rank {entry['rank']}</div>"
                f"{spark}"
                f'<div class="stats">{_esc(caption)}{_esc(agg)}</div>'
                "</div>"
            )
        out.append("</div>")
    else:
        out.append('<p class="none">no series recorded</p>')

    out.append("<h2>Alert timeline</h2>")
    alerts = data.get("alerts") or []
    if alerts:
        out.append(_timeline_svg(alerts, t_range))
        rows = "".join(
            "<tr>"
            f"<td>{_esc(a['rule'])}</td><td>{_esc(a['severity'])}</td>"
            f"<td>{a['rank']}</td><td>{_fmt(a['t_fired_s'])}</td>"
            f"<td>{_fmt(a.get('t_resolved_s'))}</td>"
            f"<td>{_fmt(a['value'])}</td>"
            f"<td>{_esc(a['condition'])}</td>"
            "</tr>"
            for a in alerts
        )
        out.append(
            "<table><tr><th>rule</th><th>severity</th><th>rank</th>"
            "<th>fired [s]</th><th>resolved [s]</th><th>value</th>"
            f"<th>condition</th></tr>{rows}</table>"
        )
    else:
        out.append('<p class="none">no alerts fired</p>')

    gaps = data.get("gaps") or []
    if gaps:
        out.append("<h2>Sampler gaps</h2>")
        rows = "".join(
            "<tr>"
            f"<td>rank {g['rank']}</td><td>{_fmt(g['t0_s'])}</td>"
            f"<td>{_fmt(g['t1_s'])}</td><td>{g['missed_ticks']}</td>"
            "</tr>"
            for g in gaps
        )
        out.append(
            "<table><tr><th>rank</th><th>from [s]</th><th>to [s]</th>"
            f"<th>missed ticks</th></tr>{rows}</table>"
        )

    functions = data.get("functions") or []
    if functions:
        out.append("<h2>Per-function energy (reconciled)</h2>")
        rows = []
        for fn in functions:
            ok = fn.get("ok")
            verdict = (
                '<td class="ok">ok</td>'
                if ok
                else ('<td class="bad">DRIFT</td>' if ok is not None
                      else "<td>—</td>")
            )
            rows.append(
                "<tr>"
                f"<td>{_esc(fn['function'])}</td><td>{fn['calls']}</td>"
                f"<td>{_fmt(fn['time_s'])}</td>"
                f"<td>{_fmt(fn['gpu_j'])}</td>"
                f"<td>{_fmt(fn['total_j'])}</td>"
                f"<td>{_fmt(fn.get('drift_s'), 2)}</td>{verdict}"
                "</tr>"
            )
        out.append(
            "<table><tr><th>function</th><th>calls</th><th>time [s]</th>"
            "<th>GPU [J]</th><th>total [J]</th><th>drift [s]</th>"
            f"<th></th></tr>{''.join(rows)}</table>"
        )
        rec = data.get("reconciliation") or {}
        if rec:
            cls = "ok" if rec.get("ok") else "bad"
            out.append(
                f'<p class="{cls}">max trace-vs-report drift '
                f"{_fmt(rec['max_drift_s'], 2)} s "
                f"(tolerance {_fmt(rec['tolerance_s'], 2)} s)</p>"
            )

    comm = data.get("comm") or {}
    if comm:
        out.append("<h2>Communication</h2>")
        out.append(
            '<p class="meta">'
            f"{_fmt(comm.get('bytes_moved'))} bytes moved · "
            f"transfer {_fmt(comm.get('comm_time_s'))} s · "
            f"synchronization wait {_fmt(comm.get('sync_wait_s'))} s</p>"
        )
        rank_waits = comm.get("rank_wait_s") or []
        if rank_waits:
            total_wait = sum(rank_waits) or 1.0
            # The least-waiting rank is the gating one: everyone else
            # idles at the collective waiting for it to arrive.
            gating = min(
                range(len(rank_waits)), key=lambda r: rank_waits[r]
            )
            rows = "".join(
                "<tr>"
                f"<td>rank {rank}</td><td>{_fmt(wait)}</td>"
                f"<td>{100.0 * wait / total_wait:.1f}%</td>"
                f"<td>{'gating' if rank == gating else ''}</td>"
                "</tr>"
                for rank, wait in enumerate(rank_waits)
            )
            out.append(
                "<table><tr><th>rank</th><th>wait [s]</th>"
                f"<th>share</th><th></th></tr>{rows}</table>"
            )
        calls = comm.get("calls") or {}
        if calls:
            rows = "".join(
                f"<tr><td>{_esc(op)}</td><td>{count}</td></tr>"
                for op, count in sorted(calls.items())
            )
            out.append(
                "<table><tr><th>collective</th><th>calls</th></tr>"
                f"{rows}</table>"
            )

    metrics = data.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        out.append("<h2>Counters</h2>")
        rows = "".join(
            f"<tr><td>{_esc(k)}</td><td>{_fmt(v)}</td></tr>"
            for k, v in sorted(counters.items())
        )
        out.append(f"<table><tr><th>counter</th><th>value</th></tr>{rows}</table>")

    out.append("</body></html>")
    return "\n".join(out)


def write_html_report(path: str, data: Mapping[str, object]) -> str:
    """Render and atomically write the report; returns the HTML."""
    text = render_html(data)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".report-", suffix=".html.tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return text


def write_json_snapshot(path: str, data: Mapping[str, object]) -> None:
    """Atomically write the report payload as JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".snapshot-", suffix=".json.tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
