"""System presets for the three testbeds of Table I.

Each :class:`SystemConfig` bundles the node hardware (GPU/CPU specs,
memory + auxiliary power), the topology (ranks == GCDs per node), the
energy-measurement backend available to users on that system, and
whether the centre lets users change GPU clocks (only miniHPC does,
which is why the paper's frequency studies run there, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hardware.specs import (
    CpuSpec,
    GpuSpec,
    NodePowerSpec,
    a100_pcie_40gb,
    a100_sxm4_80gb,
    epyc_7713,
    epyc_7a53,
    intel_max_1550,
    mi250x_gcd,
    xeon_6258r_pair,
    xeon_max_9470_pair,
)
from ..mpi.timing import CommModel


@dataclass(frozen=True)
class SystemConfig:
    """One Table-I system: hardware, topology, measurement stack."""

    name: str
    gpu_spec_factory: Callable[[], GpuSpec]
    cpu_spec: CpuSpec
    node_power: NodePowerSpec
    #: MPI ranks (= GPUs or GCDs) per node.
    ranks_per_node: int
    #: PMT backend users reach on this system: "cray", "nvml" or "rocm".
    pmt_backend: str
    #: Slurm acct_gather_energy plugin: "pm_counters", "ipmi" or "rapl".
    slurm_energy_plugin: str
    #: Whether users may change GPU application clocks (miniHPC only).
    allow_user_freq_control: bool
    comm_model: CommModel = field(default_factory=CommModel)

    def gpu_spec(self) -> GpuSpec:
        return self.gpu_spec_factory()

    @property
    def has_pm_counters(self) -> bool:
        """HPE/Cray-built systems expose /sys/cray/pm_counters."""
        return self.slurm_energy_plugin == "pm_counters"


def lumi_g() -> SystemConfig:
    """LUMI-G: 8x MI250X GCDs + EPYC 7A53 per node, Cray pm_counters."""
    return SystemConfig(
        name="LUMI-G",
        gpu_spec_factory=mi250x_gcd,
        cpu_spec=epyc_7a53(),
        node_power=NodePowerSpec(memory_power_w=150.0, aux_power_w=350.0),
        ranks_per_node=8,
        pmt_backend="cray",
        slurm_energy_plugin="pm_counters",
        allow_user_freq_control=False,
    )


def cscs_a100() -> SystemConfig:
    """CSCS-A100: 4x A100-SXM4-80GB + EPYC 7713 per node, pm_counters."""
    return SystemConfig(
        name="CSCS-A100",
        gpu_spec_factory=a100_sxm4_80gb,
        cpu_spec=epyc_7713(),
        # pm_counters on this system does not expose a separate memory
        # counter; memory draw is folded into "Other" downstream (Fig. 4).
        node_power=NodePowerSpec(memory_power_w=75.0, aux_power_w=235.0),
        ranks_per_node=4,
        pmt_backend="nvml",
        slurm_energy_plugin="pm_counters",
        allow_user_freq_control=False,
    )


def mini_hpc() -> SystemConfig:
    """miniHPC: 2x A100-PCIE-40GB + 2x Xeon 6258R; users may set clocks."""
    return SystemConfig(
        name="miniHPC",
        gpu_spec_factory=a100_pcie_40gb,
        cpu_spec=xeon_6258r_pair(),
        node_power=NodePowerSpec(memory_power_w=110.0, aux_power_w=150.0),
        ranks_per_node=2,
        pmt_backend="nvml",
        slurm_energy_plugin="ipmi",
        allow_user_freq_control=True,
    )


def aurora_pvc() -> SystemConfig:
    """Aurora-class Intel system: 6x PVC Max 1550 + 2x Xeon Max per node.

    Not part of the paper's Table I — it exists for the §V future-work
    experiments (ManDyn on Intel GPUs through Level Zero Sysman).
    """
    return SystemConfig(
        name="Aurora-PVC",
        gpu_spec_factory=intel_max_1550,
        cpu_spec=xeon_max_9470_pair(),
        node_power=NodePowerSpec(memory_power_w=180.0, aux_power_w=420.0),
        ranks_per_node=6,
        pmt_backend="levelzero",
        slurm_energy_plugin="ipmi",
        allow_user_freq_control=True,
    )


_PRESETS = {
    "LUMI-G": lumi_g,
    "CSCS-A100": cscs_a100,
    "miniHPC": mini_hpc,
    "Aurora-PVC": aurora_pvc,
}


def by_name(name: str) -> SystemConfig:
    """Resolve a system by catalog name, preset name, or spec-file ref.

    Since the hardware catalog landed this is a thin resolver over
    :func:`repro.catalog.resolve_system`: shipped and user spec files
    (including ``path:<file>`` references) resolve here, and the four
    Table-I names return objects field-for-field equal to the Python
    presets above, so run keys and cached results are unaffected. The
    catalog import is lazy to keep ``repro.systems`` importable from
    ``repro.catalog`` without a cycle.
    """
    from ..catalog import resolve_system

    return resolve_system(name)


def all_system_names() -> tuple:
    """Names of every resolvable system (catalog entries + presets).

    The single source for "known systems" lists in error messages —
    campaign spec validation and the resolver's unknown-name error
    both quote this, so catalog-only systems appear in both.
    """
    from ..catalog import known_system_names

    return known_system_names()
