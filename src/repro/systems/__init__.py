"""Table-I system presets and cluster assembly (DESIGN.md §2)."""

from .cluster import Cluster
from .presets import (
    SystemConfig,
    all_system_names,
    aurora_pvc,
    by_name,
    cscs_a100,
    lumi_g,
    mini_hpc,
)

__all__ = [
    "Cluster",
    "SystemConfig",
    "all_system_names",
    "aurora_pvc",
    "by_name",
    "cscs_a100",
    "lumi_g",
    "mini_hpc",
]
