"""Cluster assembly: nodes, rank placement, device attachment.

A :class:`Cluster` instantiates the simulated hardware for ``n_ranks``
MPI ranks on a Table-I system: one GPU/GCD and one rank-local clock per
rank, whole nodes of ``ranks_per_node`` devices, a
:class:`~repro.mpi.SimComm` wired with the node topology, pm_counters
emulation on HPE/Cray systems, and the vendor management library
(NVML or ROCm SMI) attached to this process so instrumentation code
can reach the devices exactly as it would on the real machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import nvml, rocm
from ..craypm import PmCounters
from ..hardware.clock import VirtualClock
from ..hardware.gpu import SimulatedGpu
from ..hardware.node import ComputeNode
from ..mpi import SimComm, make_backend
from ..units import mhz
from .presets import SystemConfig


class Cluster:
    """Simulated allocation of ``n_ranks`` ranks on ``system`` nodes.

    ``comm_backend`` selects where rank-local host work runs:
    ``"local"`` (default, everything sequential in this process) or
    ``"process"`` (one OS process per rank, see
    :mod:`repro.mpi.proc`). Virtual-time results are bit-identical
    between the two.
    """

    def __init__(
        self,
        system: SystemConfig,
        n_ranks: int,
        attach_management_library: bool = True,
        comm_backend: str = "local",
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_ranks % system.ranks_per_node not in (0,) and n_ranks > system.ranks_per_node:
            raise ValueError(
                f"{n_ranks} ranks do not fill whole {system.name} nodes "
                f"of {system.ranks_per_node}"
            )
        self.system = system
        self.n_ranks = n_ranks
        self.clocks: List[VirtualClock] = [VirtualClock() for _ in range(n_ranks)]
        self.gpus: List[SimulatedGpu] = []
        self.nodes: List[ComputeNode] = []
        self.node_of_rank: List[int] = []
        self.pm_counters: List[PmCounters] = []

        rpn = min(system.ranks_per_node, n_ranks)
        n_nodes = (n_ranks + system.ranks_per_node - 1) // system.ranks_per_node
        rank = 0
        for node_idx in range(n_nodes):
            node_gpus: List[SimulatedGpu] = []
            node_rpn = min(rpn, n_ranks - rank)
            lead_clock = self.clocks[rank]
            for local in range(node_rpn):
                gpu = SimulatedGpu(
                    system.gpu_spec(), self.clocks[rank], index=local
                )
                node_gpus.append(gpu)
                self.gpus.append(gpu)
                self.node_of_rank.append(node_idx)
                rank += 1
            node = ComputeNode(
                name=f"{system.name.lower()}-node{node_idx:04d}",
                clock=lead_clock,
                cpu_spec=system.cpu_spec,
                power_spec=system.node_power,
                gpus=node_gpus,
            )
            self.nodes.append(node)
            if system.has_pm_counters:
                self.pm_counters.append(PmCounters(node))

        self.comm = SimComm(
            self.clocks,
            model=system.comm_model,
            node_of_rank=self.node_of_rank,
            backend=make_backend(comm_backend, n_ranks),
        )
        if attach_management_library:
            self.attach_management_library()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def gpu_of_rank(self, rank: int) -> SimulatedGpu:
        return self.gpus[rank]

    def node_of(self, rank: int) -> ComputeNode:
        return self.nodes[self.node_of_rank[rank]]

    def local_rank(self, rank: int) -> int:
        """Node-local index of ``rank`` (its GPU/GCD slot)."""
        node = self.node_of_rank[rank]
        return rank - self.node_of_rank.index(node)

    def ranks_on_node(self, node_idx: int) -> List[int]:
        return [r for r, n in enumerate(self.node_of_rank) if n == node_idx]

    def card_of_rank(self, rank: int) -> int:
        """Physical accelerator card index (node-local) driven by ``rank``.

        On MI250X two consecutive ranks share a card; the analysis layer
        uses this to de-duplicate card-level power readings (§III-B).
        """
        gcds = self.node_of(rank).gcds_per_card
        return self.local_rank(rank) // gcds

    # ------------------------------------------------------------------
    # Management library / frequency control
    # ------------------------------------------------------------------

    def attach_management_library(self) -> None:
        """Expose the devices via the vendor's management library
        (NVML, ROCm SMI or Level Zero Sysman), as on the real node."""
        from .. import levelzero

        vendor = self.system.gpu_spec().vendor
        if vendor == "nvidia":
            nvml.attach_devices(
                self.gpus,
                allow_clock_control=self.system.allow_user_freq_control,
            )
            nvml.nvmlInit()
        elif vendor == "amd":
            rocm.attach_devices(self.gpus)
            rocm.rsmi_init()
        elif vendor == "intel":
            levelzero.attach_devices(self.gpus)
            levelzero.zesInit()
        else:  # pragma: no cover - specs only carry known vendors
            raise ValueError(f"unknown GPU vendor {vendor!r}")

    def detach_management_library(self) -> None:
        from .. import levelzero

        # Examples and workers tear clusters down through this call;
        # take the comm backend's rank workers with it.
        self.comm.backend.shutdown()
        vendor = self.system.gpu_spec().vendor
        if vendor == "nvidia":
            nvml.detach_devices()
        elif vendor == "amd":
            rocm.detach_devices()
        else:
            levelzero.detach_devices()

    def apply_gpu_frequency_mhz(self, freq_mhz: float) -> None:
        """Pin every device's application clocks (Slurm ``--gpu-freq``)."""
        for gpu in self.gpus:
            gpu.set_application_clocks(
                gpu.spec.memory_clock_hz, mhz(freq_mhz), charge_latency=False
            )

    def reset_gpu_frequency(self) -> None:
        """Hand every device back to its DVFS governor."""
        for gpu in self.gpus:
            gpu.reset_application_clocks()

    def apply_cpu_frequency_khz(self, freq_khz: int) -> None:
        """Set every node's CPU clock (Slurm ``--cpu-freq``)."""
        for node in self.nodes:
            node.cpu.set_frequency_khz(freq_khz)

    def cpu_slowdown_factor(self, rank: int) -> float:
        """Host-phase slowdown of the node hosting ``rank``."""
        return self.node_of(rank).cpu.slowdown_factor

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete hardware state of the allocation.

        Valid at step boundaries (no kernel executing, no open
        measurement); the per-rank clocks, devices, node accumulators,
        comm statistics and pm_counters emulation all round-trip.
        """
        return {
            "system": self.system.name,
            "n_ranks": self.n_ranks,
            "clocks": [c.state_dict() for c in self.clocks],
            "gpus": [g.state_dict() for g in self.gpus],
            "nodes": [n.state_dict() for n in self.nodes],
            "comm_stats": self.comm.stats.state_dict(),
            "pm_counters": [p.state_dict() for p in self.pm_counters],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        if state["system"] != self.system.name:
            raise ValueError(
                f"checkpoint is for system {state['system']!r}, "
                f"not {self.system.name!r}"
            )
        if int(state["n_ranks"]) != self.n_ranks:
            raise ValueError(
                f"checkpoint has {state['n_ranks']} ranks, "
                f"cluster has {self.n_ranks}"
            )
        for clock, s in zip(self.clocks, state["clocks"]):
            clock.restore_state(s)
        for gpu, s in zip(self.gpus, state["gpus"]):
            gpu.restore_state(s)
        for node, s in zip(self.nodes, state["nodes"]):
            node.restore_state(s)
        self.comm.stats.restore_state(state["comm_stats"])
        for pm, s in zip(self.pm_counters, state["pm_counters"]):
            pm.restore_state(s)

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------

    def total_node_energy_j(self) -> float:
        """Whole-allocation energy (all nodes, all devices)."""
        return sum(node.node_energy_j for node in self.nodes)

    def total_gpu_energy_j(self) -> float:
        return sum(g.energy_j for g in self.gpus)

    def device_energy_breakdown_j(self) -> Dict[str, float]:
        """Fig. 4 style per-device-class totals over the allocation."""
        totals = {"GPU": 0.0, "CPU": 0.0, "Memory": 0.0, "Other": 0.0}
        for node in self.nodes:
            for key, value in node.device_energy_breakdown_j().items():
                totals[key] += value
        return totals

    def elapsed_s(self) -> float:
        """Latest rank-local time (ranks synchronize at collectives)."""
        return max(c.now for c in self.clocks)

    def synchronize(self) -> None:
        """Barrier helper used at phase boundaries."""
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cluster({self.system.name!r}, ranks={self.n_ranks}, "
            f"nodes={self.n_nodes})"
        )
