"""KernelTuner-style frequency/parameter tuning (DESIGN.md §2)."""

from .observers import (
    BenchmarkObserver,
    EnergyObserver,
    PowerObserver,
    TimeObserver,
    default_observers,
)
from .strategies import (
    STRATEGIES,
    brute_force,
    enumerate_space,
    greedy_descent,
    random_sample,
)
from .tuner import (
    FREQUENCY_PARAM,
    sph_kernel_source,
    tune_all_sph_functions,
    tune_kernel,
)

__all__ = [
    "BenchmarkObserver",
    "EnergyObserver",
    "PowerObserver",
    "TimeObserver",
    "default_observers",
    "STRATEGIES",
    "brute_force",
    "enumerate_space",
    "greedy_descent",
    "random_sample",
    "FREQUENCY_PARAM",
    "sph_kernel_source",
    "tune_all_sph_functions",
    "tune_kernel",
]
