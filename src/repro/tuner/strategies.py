"""Search strategies over tuning parameter spaces.

KernelTuner's default is brute force — fine for the paper's use case,
where the only parameter is the GPU clock over a ~28-bin window
(§III-C). Random sampling and greedy neighborhood descent are provided
for larger spaces (e.g. clock x block size).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterable, List, Sequence

#: A configuration is one concrete assignment of tunable parameters.
Config = Dict[str, object]


def enumerate_space(params: Dict[str, Sequence]) -> List[Config]:
    """Cartesian product of all parameter values, in stable order."""
    if not params:
        return [{}]
    names = list(params)
    configs = []
    for combo in itertools.product(*(params[n] for n in names)):
        configs.append(dict(zip(names, combo)))
    return configs


def brute_force(params: Dict[str, Sequence]) -> List[Config]:
    """Evaluate the entire search space (KernelTuner's default)."""
    return enumerate_space(params)


def random_sample(
    params: Dict[str, Sequence], fraction: float = 0.5, seed: int = 0
) -> List[Config]:
    """Evaluate a random fraction of the space (at least one config)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    space = enumerate_space(params)
    k = max(1, int(round(fraction * len(space))))
    rng = random.Random(seed)
    return rng.sample(space, k)


def greedy_descent(
    params: Dict[str, Sequence],
    evaluate: Callable[[Config], float],
    seed: int = 0,
    restarts: int = 2,
) -> List[Config]:
    """Greedy neighborhood descent with restarts.

    Unlike the enumerative strategies, this one *drives* evaluation
    itself (it needs scores to pick neighbors); it returns the list of
    configurations it visited, in visit order.
    """
    names = list(params)
    values = {n: list(params[n]) for n in names}
    rng = random.Random(seed)
    visited: List[Config] = []
    seen = set()

    def key(cfg: Config):
        return tuple(cfg[n] for n in names)

    def visit(cfg: Config) -> float:
        if key(cfg) not in seen:
            seen.add(key(cfg))
            visited.append(cfg)
        return evaluate(cfg)

    for _ in range(max(restarts, 1)):
        current = {n: rng.choice(values[n]) for n in names}
        current_score = visit(current)
        improved = True
        while improved:
            improved = False
            for n in names:
                idx = values[n].index(current[n])
                for nidx in (idx - 1, idx + 1):
                    if not 0 <= nidx < len(values[n]):
                        continue
                    cand = dict(current)
                    cand[n] = values[n][nidx]
                    score = visit(cand)
                    if score < current_score:
                        current, current_score = cand, score
                        improved = True
    return visited


STRATEGIES = {
    "brute_force": brute_force,
    "random_sample": random_sample,
}
