"""``tune_kernel`` — the KernelTuner-style entry point (§III-C).

The paper uses KernelTuner not to tune kernel code parameters but to
benchmark each SPH-EXA kernel repeatedly at different *device-level*
GPU clocks and pick the most energy-efficient one:

>>> results, best = tune_kernel(                       # doctest: +SKIP
...     kernel_name="MomentumEnergy",
...     kernel_source=sph_kernel_source("MomentumEnergy", 450**3),
...     problem_size=450**3,
...     params={"gpu_frequency_mhz": [1410, 1395, ..., 1005]},
...     gpu=device, objective="edp")

``gpu_frequency_mhz`` is recognized as the device-clock parameter and
applied through ``nvmlDeviceSetApplicationsClocks`` semantics before
benchmarking; other parameters (e.g. ``block_size``) affect the
kernel's achieved efficiency through the source callable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hardware.gpu import SimulatedGpu
from ..hardware.kernel import KernelLaunch
from ..sph.workload import REFERENCE_NEIGHBORS, WorkloadModel
from ..units import mhz
from .observers import default_observers
from .strategies import Config, STRATEGIES, greedy_descent

#: The device-level tunable the paper sweeps.
FREQUENCY_PARAM = "gpu_frequency_mhz"

#: Block-size efficiency curve: a mild, realistic occupancy effect so
#: the tuner has a genuine code-parameter space to search when asked.
_BLOCK_SIZE_EFFICIENCY = {64: 0.82, 128: 0.95, 256: 1.00, 512: 0.93, 1024: 0.80}

KernelSource = Callable[[Config], KernelLaunch]


def sph_kernel_source(
    function: str,
    problem_size: int,
    mean_neighbors: float = REFERENCE_NEIGHBORS,
    with_gravity: bool = False,
) -> KernelSource:
    """Kernel source for one SPH-EXA function at a fixed problem size.

    ``problem_size`` is the particle count (the paper fixes 450^3).
    ``block_size`` in the configuration, if present, scales the work to
    mimic occupancy effects.
    """
    model = WorkloadModel(problem_size, mean_neighbors, with_gravity)

    def source(config: Config) -> KernelLaunch:
        launches = model.launches_for(function)
        total_flops = sum(l.flops for l in launches)
        total_bytes = sum(l.bytes_moved for l in launches)
        eff = 1.0
        if "block_size" in config:
            try:
                eff = _BLOCK_SIZE_EFFICIENCY[int(config["block_size"])]
            except KeyError:
                raise ValueError(
                    f"unsupported block_size {config['block_size']!r}"
                ) from None
        return KernelLaunch(
            name=function,
            flops=total_flops / eff,
            bytes_moved=total_bytes,
            power_intensity=launches[0].power_intensity,
            launch_overhead=launches[0].launch_overhead,
        )

    return source


def _objective_value(record: Dict[str, float], objective: str) -> float:
    if objective == "time":
        return record["time"]
    if objective == "energy":
        return record["energy"]
    if objective == "edp":
        return record["time"] * record["energy"]
    raise ValueError(f"unknown objective {objective!r}")


def _benchmark(
    gpu: SimulatedGpu,
    kernel: KernelLaunch,
    config: Config,
    iterations: int,
) -> Dict[str, float]:
    """Run one configuration ``iterations`` times and average metrics."""
    if FREQUENCY_PARAM in config:
        freq = float(config[FREQUENCY_PARAM])
        quantized = gpu.spec.quantize_clock_hz(mhz(freq))
        if abs(quantized - mhz(freq)) > 1e-3:
            raise ValueError(
                f"{freq} MHz is not a supported clock for {gpu.spec.name}"
            )
        gpu.set_application_clocks(gpu.spec.memory_clock_hz, mhz(freq))
    observers = default_observers()
    for _ in range(iterations):
        for obs in observers:
            obs.before_start(gpu)
        gpu.execute(kernel)
        for obs in observers:
            obs.after_finish(gpu)
    record: Dict[str, float] = dict(config)
    for obs in observers:
        record.update(obs.get_results())
    return record


def tune_kernel(
    kernel_name: str,
    kernel_source: KernelSource,
    problem_size: int,
    params: Dict[str, Sequence],
    gpu: SimulatedGpu,
    objective: str = "edp",
    strategy: str = "brute_force",
    iterations: int = 7,
    strategy_options: Optional[Dict] = None,
) -> Tuple[List[Dict[str, float]], Dict[str, float]]:
    """Benchmark every (selected) configuration; return (results, best).

    Mirrors KernelTuner's ``tune_kernel(kernel_name, kernel_source,
    problem_size, params)`` signature with the simulated device passed
    explicitly. Results are one record per configuration with ``time``
    (s), ``energy`` (J) and ``power`` (W) fields; ``best`` minimizes
    the objective (default EDP, as in the paper).
    """
    if problem_size <= 0:
        raise ValueError("problem_size must be positive")
    if not params:
        raise ValueError("need at least one tunable parameter")
    if iterations < 1:
        raise ValueError("need at least one benchmark iteration")
    options = strategy_options or {}

    results: List[Dict[str, float]] = []

    if strategy == "greedy":
        cache: Dict[tuple, Dict[str, float]] = {}
        names = list(params)

        def evaluate(config: Config) -> float:
            key = tuple(config[n] for n in names)
            if key not in cache:
                record = _benchmark(
                    gpu, kernel_source(config), config, iterations
                )
                cache[key] = record
                results.append(record)
            return _objective_value(cache[key], objective)

        greedy_descent(params, evaluate, **options)
    else:
        try:
            select = STRATEGIES[strategy]
        except KeyError:
            known = ", ".join(sorted([*STRATEGIES, "greedy"]))
            raise ValueError(
                f"unknown strategy {strategy!r} (known: {known})"
            ) from None
        for config in select(params, **options):
            results.append(
                _benchmark(gpu, kernel_source(config), config, iterations)
            )

    best = min(results, key=lambda r: _objective_value(r, objective))
    return results, best


def tune_all_sph_functions(
    gpu: SimulatedGpu,
    problem_size: int,
    frequencies_mhz: Sequence[float],
    with_gravity: bool = False,
    objective: str = "edp",
    iterations: int = 3,
) -> Dict[str, float]:
    """Best clock per SPH function — the Fig. 2 experiment.

    Returns ``{function: best_frequency_mhz}``, directly consumable by
    :meth:`repro.core.ManDynPolicy.from_tuning`.
    """
    from ..sph.workload import function_names

    best_freqs: Dict[str, float] = {}
    for fn in function_names(with_gravity):
        _, best = tune_kernel(
            kernel_name=fn,
            kernel_source=sph_kernel_source(
                fn, problem_size, with_gravity=with_gravity
            ),
            problem_size=problem_size,
            params={FREQUENCY_PARAM: list(frequencies_mhz)},
            gpu=gpu,
            objective=objective,
            iterations=iterations,
        )
        best_freqs[fn] = float(best[FREQUENCY_PARAM])
    return best_freqs
