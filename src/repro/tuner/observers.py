"""Benchmark observers (KernelTuner-style).

KernelTuner attaches observers to kernel benchmarking runs to collect
quantities beyond runtime. We provide the ones the paper's methodology
needs: time, NVML power/energy, and the derived EDP objective.
"""

from __future__ import annotations

import abc
from typing import Dict

from ..hardware.gpu import SimulatedGpu


class BenchmarkObserver(abc.ABC):
    """Collects one or more metrics around each kernel execution."""

    @abc.abstractmethod
    def before_start(self, gpu: SimulatedGpu) -> None:
        """Called immediately before one benchmark iteration."""

    @abc.abstractmethod
    def after_finish(self, gpu: SimulatedGpu) -> None:
        """Called immediately after one benchmark iteration."""

    @abc.abstractmethod
    def get_results(self) -> Dict[str, float]:
        """Averaged metrics over the observed iterations."""


class TimeObserver(BenchmarkObserver):
    """Wall (simulated) time per iteration, seconds."""

    def __init__(self) -> None:
        self._start = 0.0
        self._total = 0.0
        self._count = 0

    def before_start(self, gpu: SimulatedGpu) -> None:
        self._start = gpu.clock.now

    def after_finish(self, gpu: SimulatedGpu) -> None:
        self._total += gpu.clock.now - self._start
        self._count += 1

    def get_results(self) -> Dict[str, float]:
        if self._count == 0:
            return {"time": 0.0}
        return {"time": self._total / self._count}


class EnergyObserver(BenchmarkObserver):
    """GPU board energy per iteration, joules (NVML counter deltas)."""

    def __init__(self) -> None:
        self._start_j = 0.0
        self._total_j = 0.0
        self._count = 0

    def before_start(self, gpu: SimulatedGpu) -> None:
        self._start_j = gpu.energy_j

    def after_finish(self, gpu: SimulatedGpu) -> None:
        self._total_j += gpu.energy_j - self._start_j
        self._count += 1

    def get_results(self) -> Dict[str, float]:
        if self._count == 0:
            return {"energy": 0.0}
        return {"energy": self._total_j / self._count}


class PowerObserver(BenchmarkObserver):
    """Average board power per iteration, watts."""

    def __init__(self) -> None:
        self._start_t = 0.0
        self._start_j = 0.0
        self._powers = []

    def before_start(self, gpu: SimulatedGpu) -> None:
        self._start_t = gpu.clock.now
        self._start_j = gpu.energy_j

    def after_finish(self, gpu: SimulatedGpu) -> None:
        dt = gpu.clock.now - self._start_t
        dj = gpu.energy_j - self._start_j
        if dt > 0:
            self._powers.append(dj / dt)

    def get_results(self) -> Dict[str, float]:
        if not self._powers:
            return {"power": 0.0}
        return {"power": sum(self._powers) / len(self._powers)}


def default_observers() -> list:
    """The observer set the paper's tuning runs use."""
    return [TimeObserver(), EnergyObserver(), PowerObserver()]
