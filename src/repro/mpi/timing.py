"""Communication cost model for the simulated MPI layer.

A standard alpha-beta (Hockney) model: a message of ``b`` bytes between
two ranks costs ``alpha + b / beta``. Collectives over ``n`` ranks pay
``ceil(log2 n)`` latency terms plus the bandwidth term of the largest
per-rank contribution — the shape of tree/recursive-doubling
implementations in production MPIs. Intra-node transfers use a faster
link (NVLink / Infinity Fabric class) than inter-node (Slingshot
class).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CommModel:
    """Alpha-beta communication parameters."""

    #: Per-message latency between nodes, seconds.
    inter_latency_s: float = 2.0e-6
    #: Inter-node link bandwidth, bytes/second (Slingshot-11 class).
    inter_bandwidth: float = 23.0e9
    #: Per-message latency within a node, seconds.
    intra_latency_s: float = 6.0e-7
    #: Intra-node link bandwidth, bytes/second.
    intra_bandwidth: float = 150.0e9
    #: Fixed software overhead per collective call, seconds.
    call_overhead_s: float = 3.0e-6

    def point_to_point_s(self, nbytes: float, same_node: bool) -> float:
        """Time for one message of ``nbytes`` between two ranks."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        if same_node:
            return self.intra_latency_s + nbytes / self.intra_bandwidth
        return self.inter_latency_s + nbytes / self.inter_bandwidth

    def collective_s(
        self, n_ranks: int, nbytes_per_rank: float, multi_node: bool = True
    ) -> float:
        """Time for a tree-shaped collective over ``n_ranks``."""
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_ranks == 1:
            return self.call_overhead_s
        rounds = math.ceil(math.log2(n_ranks))
        latency = self.inter_latency_s if multi_node else self.intra_latency_s
        bandwidth = self.inter_bandwidth if multi_node else self.intra_bandwidth
        return (
            self.call_overhead_s
            + rounds * latency
            + rounds * nbytes_per_rank / bandwidth
        )

    def alltoall_s(
        self, n_ranks: int, nbytes_per_pair: float, multi_node: bool = True
    ) -> float:
        """Time for a pairwise-exchange all-to-all."""
        if n_ranks <= 1:
            return self.call_overhead_s
        latency = self.inter_latency_s if multi_node else self.intra_latency_s
        bandwidth = self.inter_bandwidth if multi_node else self.intra_bandwidth
        return (
            self.call_overhead_s
            + (n_ranks - 1) * (latency + nbytes_per_pair / bandwidth)
        )
