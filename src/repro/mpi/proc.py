"""Process-parallel comm backend: one OS process per simulated rank.

The ``local`` backend runs every rank sequentially inside one Python
process — an 8-rank Sedov run uses one core, and eight ranks' worth of
modelled device-busy time serializes on the host. This backend gives
each rank a real OS process (``fork`` + duplex pipes) plus one shared
anonymous ``mmap`` arena for ndarray payloads, behind the exact same
:class:`~repro.mpi.comm.SimComm` collective API:

* **Virtual-time semantics are unchanged.** Collectives still advance
  every participant to ``max(rank times) + modelled latency`` — that
  arithmetic is pure bookkeeping and stays where the clocks live, so a
  run under this backend is bit-identical to the ``local`` backend in
  every virtual observable (clock times, energy totals, dt history,
  comm stats).
* **Host wall time is where the parallelism lands.** Modelled per-rank
  device-busy time is *paced* concurrently (every rank worker sleeps
  its own share simultaneously instead of back-to-back), and large
  float64 reduction payloads are summed slice-parallel in the workers
  through the shared arena. Slicing an elementwise sum never reorders
  any element's additions, so the reduced array is bit-identical to the
  single-process ``functools.reduce`` result.
* **Failure is detected, not hung.** Every dispatch round polls the
  worker pipes with a deadline and checks liveness; a SIGKILLed rank
  raises :class:`RankDied` (classified transient by the campaign
  layer, like a Slurm preemption) instead of blocking forever.

Workers are stateless compute servers: the team can be torn down and
lazily respawned at any time (arena growth, shutdown between runs)
without touching simulation state.
"""

from __future__ import annotations

import mmap
import os
import time
from typing import List, Optional, Sequence

import numpy as np

from .comm import CommBackend, MpiError

#: Default shared-arena capacity (bytes); grows by respawn on demand.
DEFAULT_ARENA_BYTES = 8 * 1024 * 1024

#: Smallest ndarray (elements) worth routing through the shared arena;
#: below this the pipe round-trip costs more than the sum saves.
ARRAY_REDUCE_MIN_ELEMENTS = 256

#: Seconds a worker may stay silent before it is declared dead.
DEFAULT_REPLY_TIMEOUT_S = 60.0


class RankDied(MpiError):
    """A rank worker process died (or stopped responding) mid-run."""

    def __init__(self, rank: int, reason: str) -> None:
        super().__init__(f"rank {rank} worker died: {reason}")
        self.rank = rank
        self.reason = reason


def _worker_main(rank: int, conn, arena: mmap.mmap) -> None:
    """Rank worker loop: serve pace/sum/ping commands until stopped."""
    buf = np.frombuffer(arena, dtype=np.float64)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "pace":
            seconds = msg[1]
            if seconds > 0.0:
                time.sleep(seconds)
            conn.send(("ok", rank))
        elif cmd == "sum":
            # Sum n_contribs stacked arena blocks of `count` float64s
            # into the output block, over this rank's [lo, hi) slice.
            # Accumulation order over contributions matches the
            # parent's functools.reduce(np.add, ...) exactly.
            _, n_contribs, count, lo, hi = msg
            acc = np.copy(buf[lo:hi])
            for k in range(1, n_contribs):
                acc += buf[k * count + lo:k * count + hi]
            buf[n_contribs * count + lo:n_contribs * count + hi] = acc
            conn.send(("ok", rank))
        elif cmd == "shard":
            # Durably persist this rank's trace shard: the parent
            # computed the lines (shard content is backend-independent)
            # but the write happens here, in the rank's own process.
            # Atomic temp-file + replace, so a SIGKILL mid-write never
            # leaves a torn shard.
            _, path, lines = msg
            try:
                tmp = f"{path}.tmp.{rank}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    for line in lines:
                        fh.write(line)
                        fh.write("\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except OSError as exc:
                conn.send(("error", rank, f"shard write failed: {exc}"))
            else:
                conn.send(("ok", rank))
        elif cmd == "ping":
            conn.send(("ok", rank))
        elif cmd == "stop":
            conn.send(("ok", rank))
            break
        else:  # pragma: no cover - protocol bug guard
            conn.send(("error", rank, f"unknown command {cmd!r}"))


class ProcessTeam:
    """A fleet of rank worker processes sharing one mmap arena."""

    def __init__(
        self,
        n_ranks: int,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        reply_timeout_s: float = DEFAULT_REPLY_TIMEOUT_S,
    ) -> None:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise MpiError(
                "the process backend needs the fork start method"
            ) from exc
        self.n_ranks = n_ranks
        self.arena_bytes = arena_bytes
        self.reply_timeout_s = reply_timeout_s
        # Anonymous shared mapping: inherited by fork, no named segment
        # to leak or for a resource tracker to double-unlink.
        self.arena = mmap.mmap(-1, arena_bytes)
        self.view = np.frombuffer(self.arena, dtype=np.float64)
        self._conns = []
        self._procs = []
        for rank in range(n_ranks):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(rank, child_conn, self.arena),
                name=f"repro-rank-{rank}",
                daemon=False,
            )
            proc.start()
            # Drop the parent's copy of the child end so a dead worker
            # surfaces as EOF instead of a silent stall.
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # -- protocol ------------------------------------------------------------

    def _send(self, rank: int, msg) -> None:
        try:
            self._conns[rank].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise RankDied(rank, f"pipe closed ({exc})") from None

    def _recv(self, rank: int):
        conn = self._conns[rank]
        proc = self._procs[rank]
        deadline = time.monotonic() + self.reply_timeout_s
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError):
                raise RankDied(rank, "connection lost") from None
            if not proc.is_alive():
                raise RankDied(
                    rank, f"process exited with code {proc.exitcode}"
                )
            if time.monotonic() > deadline:
                raise RankDied(
                    rank,
                    f"no reply within {self.reply_timeout_s:.0f}s",
                )

    def _round(self, messages: Sequence) -> None:
        """One dispatch round: send to all ranks, collect all replies.

        The rank-ordered send/recv loop is the barrier — no worker's
        result is consumed before every worker has answered.
        """
        for rank, msg in enumerate(messages):
            self._send(rank, msg)
        for rank in range(self.n_ranks):
            self._recv(rank)

    # -- commands ------------------------------------------------------------

    def pace(self, seconds: Sequence[float]) -> float:
        if len(seconds) != self.n_ranks:
            raise MpiError("pace needs one busy time per rank")
        t0 = time.perf_counter()
        self._round([("pace", float(s)) for s in seconds])
        return time.perf_counter() - t0

    def ping(self) -> None:
        self._round([("ping",)] * self.n_ranks)

    def reduce_sum(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise sum of equal-shape float64 arrays, slice-parallel."""
        count = arrays[0].size
        shape = arrays[0].shape
        n_contribs = len(arrays)
        needed = (n_contribs + 1) * count
        if needed > self.view.size:
            raise MpiError("arena too small for reduction payload")
        for k, arr in enumerate(arrays):
            self.view[k * count:(k + 1) * count] = arr.ravel()
        # Contiguous slice per rank; trailing ranks may get empty slices.
        bounds = np.linspace(0, count, self.n_ranks + 1).astype(np.int64)
        self._round([
            ("sum", n_contribs, count, int(bounds[r]), int(bounds[r + 1]))
            for r in range(self.n_ranks)
        ])
        out = np.copy(self.view[n_contribs * count:needed])
        return out.reshape(shape)

    def write_shard(
        self, rank: int, path: str, lines: Sequence[str]
    ) -> None:
        """Have ``rank``'s worker durably write its trace shard."""
        self._send(rank, ("shard", str(path), list(lines)))
        reply = self._recv(rank)
        if reply[0] != "ok":
            raise MpiError(
                f"rank {rank} shard write failed: {reply[2]}"
            )

    def pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    def shutdown(self) -> None:
        for rank in range(self.n_ranks):
            try:
                self._conns[rank].send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns = []
        self._procs = []
        self.view = None
        self.arena.close()


class ProcessBackend(CommBackend):
    """``process`` comm backend: rank work on real OS processes.

    Lazily spawns its :class:`ProcessTeam` on first use so building a
    cluster stays cheap and a shut-down backend transparently restarts
    (workers are stateless). ``reduce_arrays`` grows the arena by
    respawning the team when a payload outsizes it.
    """

    name = "process"
    parallel = True

    def __init__(
        self,
        n_ranks: int,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        reply_timeout_s: float = DEFAULT_REPLY_TIMEOUT_S,
    ) -> None:
        if n_ranks < 1:
            raise MpiError("need at least one rank")
        self.n_ranks = n_ranks
        self.arena_bytes = arena_bytes
        self.reply_timeout_s = reply_timeout_s
        self._team: Optional[ProcessTeam] = None

    @property
    def team(self) -> ProcessTeam:
        if self._team is None:
            self.start()
        return self._team

    def start(self) -> None:
        if self._team is None:
            self._team = ProcessTeam(
                self.n_ranks,
                arena_bytes=self.arena_bytes,
                reply_timeout_s=self.reply_timeout_s,
            )

    def shutdown(self) -> None:
        if self._team is not None:
            self._team.shutdown()
            self._team = None

    @property
    def started(self) -> bool:
        return self._team is not None

    def pace(self, seconds: Sequence[float]) -> float:
        """Pace all ranks' busy times concurrently (wall ~= max, not sum)."""
        return self.team.pace(seconds)

    def check_alive(self) -> None:
        """Barrier ping; raises :class:`RankDied` on a lost worker."""
        self.team.ping()

    def worker_pids(self) -> List[int]:
        return self.team.pids()

    def write_shard(
        self, rank: int, path: str, lines: Sequence[str]
    ) -> None:
        """Route a shard write to the owning rank's worker process."""
        self.team.write_shard(rank, path, lines)

    def can_reduce(self, values: Sequence) -> bool:
        """True when a payload qualifies for the shared-arena sum path."""
        if not values:
            return False
        first = values[0]
        if not isinstance(first, np.ndarray) or first.dtype != np.float64:
            return False
        if first.size < ARRAY_REDUCE_MIN_ELEMENTS:
            return False
        return all(
            isinstance(v, np.ndarray)
            and v.dtype == np.float64
            and v.shape == first.shape
            for v in values
        )

    def reduce_arrays(self, values: Sequence[np.ndarray]) -> np.ndarray:
        needed_bytes = (len(values) + 1) * values[0].size * 8
        if needed_bytes > self.arena_bytes:
            # Stateless workers: grow by respawn with headroom.
            self.arena_bytes = int(needed_bytes * 1.5)
            self.shutdown()
        return self.team.reduce_sum(values)
