"""Deterministic single-process MPI rank simulator.

Real SPH-EXA runs MPI+CUDA with one rank per GPU/GCD. Here every rank
is a cooperating object inside one Python process, each with its *own*
:class:`~repro.hardware.clock.VirtualClock` (rank-local time). Ranks
execute their compute phases sequentially in program order, advancing
only their own clocks; collectives then synchronize: every
participant's clock is advanced to the latest participant's time plus
the modelled collective latency. This reproduces the two effects the
paper depends on:

* load imbalance shows up as idle (GPU-clock-decaying) wait time at
  synchronization points, and
* end-of-step collective communication leaves the GPUs idle long
  enough for the DVFS governor to dip below 1000 MHz (Fig. 9).

Data movement itself is trivial (all values live in one process); the
point of the layer is faithful *time* behaviour plus mpi4py-style
calling conventions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import reduce as _functools_reduce
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..hardware.clock import VirtualClock
from .timing import CommModel


class MpiError(RuntimeError):
    """Raised on invalid communicator usage."""


@dataclass
class CommStats:
    """Aggregate statistics of communicator activity."""

    calls: Dict[str, int] = field(default_factory=dict)
    bytes_moved: float = 0.0
    sync_wait_s: float = 0.0
    comm_time_s: float = 0.0
    #: Per-rank share of ``sync_wait_s`` (idle time at collectives);
    #: grown lazily to the highest rank seen.
    rank_wait_s: List[float] = field(default_factory=list)

    def note(
        self,
        op: str,
        nbytes: float,
        wait_s: float,
        comm_s: float,
        rank_waits: Optional[Sequence[float]] = None,
    ) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1
        self.bytes_moved += nbytes
        self.sync_wait_s += wait_s
        self.comm_time_s += comm_s
        if rank_waits is not None:
            if len(self.rank_wait_s) < len(rank_waits):
                self.rank_wait_s.extend(
                    0.0 for _ in range(len(rank_waits) - len(self.rank_wait_s))
                )
            for rank, w in enumerate(rank_waits):
                self.rank_wait_s[rank] += w

    def note_rank_wait(self, rank: int, wait_s: float) -> None:
        """Charge ``wait_s`` of idle time to a single rank."""
        if len(self.rank_wait_s) <= rank:
            self.rank_wait_s.extend(
                0.0 for _ in range(rank + 1 - len(self.rank_wait_s))
            )
        self.rank_wait_s[rank] += wait_s

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "calls": dict(self.calls),
            "bytes_moved": self.bytes_moved,
            "sync_wait_s": self.sync_wait_s,
            "comm_time_s": self.comm_time_s,
            "rank_wait_s": list(self.rank_wait_s),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.calls = {k: int(v) for k, v in state["calls"].items()}
        self.bytes_moved = float(state["bytes_moved"])
        self.sync_wait_s = float(state["sync_wait_s"])
        self.comm_time_s = float(state["comm_time_s"])
        # Pre-backend checkpoints carry no per-rank breakdown.
        self.rank_wait_s = [float(w) for w in state.get("rank_wait_s", [])]


def _payload_bytes(value: Any) -> float:
    """Approximate wire size of a per-rank contribution."""
    if value is None:
        return 0.0
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8.0
    if isinstance(value, (list, tuple)):
        return float(sum(_payload_bytes(v) for v in value))
    if isinstance(value, dict):
        return float(
            sum(_payload_bytes(k) + _payload_bytes(v) for k, v in value.items())
        )
    if isinstance(value, (bytes, bytearray)):
        return float(len(value))
    if isinstance(value, str):
        return float(len(value.encode()))
    return 64.0  # pickled-object fallback


class CommBackend:
    """Execution backend behind a :class:`SimComm`.

    The communicator's *virtual-time* semantics are backend-independent:
    collectives always advance every participant to max(times) plus the
    modelled latency. What a backend decides is where rank-local
    *compute* actually runs — inline in this process (``local``) or on
    one OS process per rank (``process``, see :mod:`repro.mpi.proc`) —
    and how modelled device-busy time is paced on the host (serially
    vs. concurrently).
    """

    name: str = "backend"

    #: True when rank work executes on separate OS processes.
    parallel: bool = False

    def pace(self, seconds: Sequence[float]) -> float:
        """Sleep the modelled per-rank busy times; returns wall slept."""
        raise NotImplementedError

    def start(self) -> None:
        """Bring the backend up (spawn workers, map memory). Idempotent."""

    def shutdown(self) -> None:
        """Tear the backend down. Idempotent; safe to call twice."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class LocalBackend(CommBackend):
    """Current behaviour: every rank runs sequentially in-process.

    Paced busy times accumulate serially — eight ranks sleeping 100 ms
    each cost 800 ms of wall clock, exactly the serialization the
    ``process`` backend removes.
    """

    name = "local"
    parallel = False

    def pace(self, seconds: Sequence[float]) -> float:
        t0 = time.perf_counter()
        for s in seconds:
            if s > 0.0:
                time.sleep(s)
        return time.perf_counter() - t0


def make_backend(name: str, n_ranks: int) -> CommBackend:
    """Construct a comm backend by name (``local`` or ``process``)."""
    if name == "local":
        return LocalBackend()
    if name == "process":
        from .proc import ProcessBackend

        return ProcessBackend(n_ranks)
    raise MpiError(f"unknown comm backend {name!r} (expected local|process)")


class SimComm:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    clocks:
        One rank-local clock per rank, index == rank id.
    model:
        Communication cost model.
    node_of_rank:
        Node index of each rank (for intra- vs inter-node costing).
        Defaults to all ranks on one node.
    """

    def __init__(
        self,
        clocks: Sequence[VirtualClock],
        model: Optional[CommModel] = None,
        node_of_rank: Optional[Sequence[int]] = None,
        backend: Optional[CommBackend] = None,
    ) -> None:
        if not clocks:
            raise MpiError("a communicator needs at least one rank")
        self._clocks = list(clocks)
        self.model = model or CommModel()
        self.node_of_rank = (
            list(node_of_rank)
            if node_of_rank is not None
            else [0] * len(clocks)
        )
        if len(self.node_of_rank) != len(self._clocks):
            raise MpiError("node_of_rank must have one entry per rank")
        self.stats = CommStats()
        self.backend = backend if backend is not None else LocalBackend()

    @property
    def size(self) -> int:
        return len(self._clocks)

    def clock(self, rank: int) -> VirtualClock:
        """Rank-local clock for ``rank``."""
        return self._clocks[rank]

    @property
    def multi_node(self) -> bool:
        return len(set(self.node_of_rank)) > 1

    # ------------------------------------------------------------------
    # Synchronization core
    # ------------------------------------------------------------------

    def _synchronize(self, op: str, nbytes_per_rank: float, comm_s: float) -> None:
        """Advance all ranks to the common completion time of an op."""
        arrive = max(c.now for c in self._clocks)
        finish = arrive + comm_s
        rank_waits = [arrive - c.now for c in self._clocks]
        for c in self._clocks:
            c.advance_to(finish)
        self.stats.note(
            op, nbytes_per_rank * self.size, sum(rank_waits), comm_s,
            rank_waits=rank_waits,
        )

    def barrier(self) -> None:
        """Synchronize all ranks (zero-payload collective)."""
        self._synchronize(
            "barrier", 0.0, self.model.collective_s(self.size, 0.0, self.multi_node)
        )

    # ------------------------------------------------------------------
    # Collectives (mpi4py-style lowercase, value-per-rank inputs)
    # ------------------------------------------------------------------

    def _check_contribs(self, values: Sequence[Any]) -> None:
        if len(values) != self.size:
            raise MpiError(
                f"expected one contribution per rank "
                f"({self.size}), got {len(values)}"
            )

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = None
    ) -> Any:
        """Reduce all ranks' contributions; every rank gets the result.

        ``op`` combines two contributions (default: elementwise/NumPy
        aware sum).
        """
        self._check_contribs(values)
        nbytes = max(_payload_bytes(v) for v in values)
        self._synchronize(
            "allreduce",
            nbytes,
            self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        if op is None:
            return self._reduce_values(values)
        return _functools_reduce(op, values)

    def reduce(
        self,
        values: Sequence[Any],
        root: int = 0,
        op: Callable[[Any, Any], Any] = None,
    ) -> Any:
        """Reduce to ``root``; non-roots receive ``None``."""
        self._check_contribs(values)
        self._check_rank(root)
        nbytes = max(_payload_bytes(v) for v in values)
        self._synchronize(
            "reduce",
            nbytes,
            self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        if op is None:
            return self._reduce_values(values)
        return _functools_reduce(op, values)

    def _reduce_values(self, values: Sequence[Any]) -> Any:
        """Default-sum reduction; large float64 ndarray payloads go
        through the backend's shared-memory slice-parallel path (which
        preserves per-element addition order, so the result is
        bit-identical to the in-process fold)."""
        backend = self.backend
        if backend.parallel and getattr(backend, "can_reduce", None):
            if backend.can_reduce(values):
                return backend.reduce_arrays(values)
        return _functools_reduce(_default_sum, values)

    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        """Broadcast ``value`` from ``root``; returns per-rank copies."""
        self._check_rank(root)
        nbytes = _payload_bytes(value)
        self._synchronize(
            "bcast",
            nbytes,
            self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        return [value for _ in range(self.size)]

    def gather(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        """Gather one contribution per rank at ``root``."""
        self._check_contribs(values)
        self._check_rank(root)
        nbytes = max(_payload_bytes(v) for v in values)
        self._synchronize(
            "gather",
            nbytes,
            self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        return list(values)

    def allgather(self, values: Sequence[Any]) -> List[Any]:
        """Gather contributions from all ranks to all ranks."""
        self._check_contribs(values)
        nbytes = max(_payload_bytes(v) for v in values)
        self._synchronize(
            "allgather",
            nbytes,
            self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        return list(values)

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Exchange ``matrix[src][dst]`` so ranks receive their column."""
        self._check_contribs(matrix)
        for row in matrix:
            self._check_contribs(row)
        nbytes = max(
            _payload_bytes(cell) for row in matrix for cell in row
        )
        self._synchronize(
            "alltoall",
            nbytes,
            self.model.alltoall_s(self.size, nbytes, self.multi_node),
        )
        return [[matrix[src][dst] for src in range(self.size)]
                for dst in range(self.size)]

    def reduce_scatter(
        self,
        matrix: Sequence[Sequence[Any]],
        op: Callable[[Any, Any], Any] = None,
    ) -> List[Any]:
        """Reduce ``matrix[src][dst]`` over ``src``; rank ``dst`` keeps
        element ``dst`` of the result.

        The mpi4py ``Reduce_scatter_block`` shape: every rank
        contributes one block per destination, each destination
        receives the reduction of its column. Costed like a reduce
        followed by a scatter (one tree each), which is how
        recursive-halving implementations behave.
        """
        self._check_contribs(matrix)
        for row in matrix:
            self._check_contribs(row)
        nbytes = max(
            _payload_bytes(cell) for row in matrix for cell in row
        )
        self._synchronize(
            "reduce_scatter",
            nbytes,
            2.0 * self.model.collective_s(self.size, nbytes, self.multi_node),
        )
        if op is None:
            op = _default_sum
        return [
            _functools_reduce(op, [matrix[src][dst] for src in range(self.size)])
            for dst in range(self.size)
        ]

    # ------------------------------------------------------------------
    # Point-to-point (used by halo exchange)
    # ------------------------------------------------------------------

    def sendrecv(self, src: int, dst: int, nbytes: float) -> None:
        """Account one ``nbytes`` message from ``src`` to ``dst``.

        Both endpoints complete at the later endpoint's time plus the
        transfer cost; other ranks are unaffected.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return
        same_node = self.node_of_rank[src] == self.node_of_rank[dst]
        cost = self.model.point_to_point_s(nbytes, same_node)
        start = max(self._clocks[src].now, self._clocks[dst].now)
        finish = start + cost
        src_wait = start - self._clocks[src].now
        dst_wait = start - self._clocks[dst].now
        self._clocks[src].advance_to(finish)
        self._clocks[dst].advance_to(finish)
        self.stats.note("sendrecv", nbytes, src_wait + dst_wait, cost)
        self.stats.note_rank_wait(src, src_wait)
        self.stats.note_rank_wait(dst, dst_wait)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} out of range 0..{self.size - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimComm(size={self.size}, multi_node={self.multi_node})"


def _default_sum(a: Any, b: Any) -> Any:
    """NumPy-aware elementwise sum used as the default reduction."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return type(a)(x + y for x, y in zip(a, b))
    return a + b
