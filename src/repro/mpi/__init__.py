"""Deterministic simulated MPI layer (DESIGN.md §2)."""

from .comm import CommStats, MpiError, SimComm
from .timing import CommModel

__all__ = ["CommStats", "MpiError", "SimComm", "CommModel"]
