"""Deterministic simulated MPI layer (DESIGN.md §2)."""

from .comm import (
    CommBackend,
    CommStats,
    LocalBackend,
    MpiError,
    SimComm,
    make_backend,
)
from .proc import ProcessBackend, RankDied
from .timing import CommModel

__all__ = [
    "CommBackend",
    "CommStats",
    "LocalBackend",
    "MpiError",
    "ProcessBackend",
    "RankDied",
    "SimComm",
    "CommModel",
    "make_backend",
]
