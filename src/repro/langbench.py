"""Programming-language energy efficiency for N-body codes (Fig. 1).

Fig. 1 of the paper reproduces Portegies Zwart (2020): the energy
consumed by equivalent direct N-body implementations versus their time
to solution, across languages and devices, with CUDA/GPU
implementations roughly an order of magnitude more energy-efficient
than C++/Fortran, and interpreted Python orders of magnitude worse.

We regenerate the figure's data by (a) running a real, small direct
N-body integration to fix the work per simulated day, and (b) mapping
that work onto the simulated CPU/GPU hardware through
published-slowdown language factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .hardware.specs import CpuSpec, GpuSpec, a100_sxm4_80gb, epyc_7713


@dataclass(frozen=True)
class LanguageProfile:
    """How one implementation language/runtime uses the hardware.

    ``slowdown`` is relative to optimized C++ on the same device;
    ``device`` selects the CPU or GPU power/performance model;
    ``parallel_fraction`` is the share of sustainable peak the runtime
    reaches; ``power_activity`` is the device activity it keeps while
    running (a pinned all-core C++ code burns near-max CPU power even
    when it extracts a modest fraction of FLOP peak).
    """

    name: str
    device: str  # "cpu" | "gpu"
    slowdown: float
    parallel_fraction: float
    power_activity: float


#: Language factors in the spirit of Portegies Zwart (2020), Fig. 1.
LANGUAGE_PROFILES: tuple = (
    LanguageProfile("C++", "cpu", 1.0, 0.45, 0.95),
    LanguageProfile("Fortran", "cpu", 1.05, 0.45, 0.95),
    LanguageProfile("Rust", "cpu", 1.05, 0.45, 0.95),
    LanguageProfile("Java", "cpu", 1.9, 0.40, 0.90),
    LanguageProfile("Go", "cpu", 1.6, 0.40, 0.90),
    LanguageProfile("Python (NumPy)", "cpu", 9.0, 0.40, 0.75),
    LanguageProfile("Python (pure)", "cpu", 1500.0, 0.45, 0.25),
    LanguageProfile("CUDA", "gpu", 1.0, 0.80, 0.85),
    LanguageProfile("Python (CuPy)", "gpu", 1.3, 0.72, 0.80),
)


def nbody_reference_work(n_bodies: int = 512, steps: int = 20) -> float:
    """FLOPs of a real direct N-body leapfrog run (measured by counting).

    Runs the integration (so the number is grounded in working code)
    and returns the analytic operation count: ~24 flops per pair per
    step plus per-body updates.
    """
    rng = np.random.default_rng(3)
    pos = rng.normal(size=(n_bodies, 3))
    vel = np.zeros((n_bodies, 3))
    m = np.full(n_bodies, 1.0 / n_bodies)
    dt = 1e-3
    eps2 = 1e-4
    for _ in range(steps):
        d = pos[None, :, :] - pos[:, None, :]
        r2 = np.sum(d * d, axis=2) + eps2
        inv_r3 = r2 ** -1.5
        np.fill_diagonal(inv_r3, 0.0)
        acc = np.einsum("ijk,ij,j->ik", d, inv_r3, m)
        vel += acc * dt
        pos += vel * dt
    if not np.all(np.isfinite(pos)):
        raise FloatingPointError("N-body reference integration diverged")
    return float(steps) * (24.0 * n_bodies * (n_bodies - 1) + 12.0 * n_bodies)


@dataclass(frozen=True)
class LanguageResult:
    """Time-to-solution and energy of one implementation."""

    language: str
    device: str
    time_s: float
    energy_j: float

    @property
    def kwh(self) -> float:
        return self.energy_j / 3.6e6

    @property
    def days(self) -> float:
        return self.time_s / 86400.0


def language_efficiency(
    total_flops: float,
    cpu: CpuSpec = None,
    gpu: GpuSpec = None,
) -> List[LanguageResult]:
    """Evaluate all language profiles on ``total_flops`` of N-body work."""
    cpu = cpu or epyc_7713()
    gpu = gpu or a100_sxm4_80gb()
    # Sustained CPU FP64 throughput for an optimized vectorized code.
    cpu_peak = cpu.cores * 2.5e9 * 8.0  # cores * clock * AVX fused lanes
    results = []
    for prof in LANGUAGE_PROFILES:
        if prof.device == "cpu":
            throughput = cpu_peak * prof.parallel_fraction / prof.slowdown
            time_s = total_flops / throughput
            power = cpu.power_w(prof.power_activity)
        else:
            throughput = (
                gpu.fp_throughput * prof.parallel_fraction / prof.slowdown
            )
            time_s = total_flops / throughput
            # GPU board power plus the (mostly idle) host.
            power = (
                gpu.idle_power_w
                + prof.power_activity * gpu.dynamic_power_w
                + cpu.power_w(0.1)
            )
        results.append(
            LanguageResult(
                language=prof.name,
                device=prof.device,
                time_s=time_s,
                energy_j=power * time_s,
            )
        )
    return results


def efficiency_table(results: List[LanguageResult]) -> Dict[str, Dict[str, float]]:
    """{language: {time_s, energy_j, joules_per_flop_rank}} summary."""
    ranked = sorted(results, key=lambda r: r.energy_j)
    return {
        r.language: {
            "device": r.device,
            "time_s": r.time_s,
            "energy_j": r.energy_j,
        }
        for r in ranked
    }
