"""Slurm job objects.

Models what matters for the paper's Fig. 3 validation: a job's energy
accounting window opens when the job *starts on the nodes* — before the
application allocates data structures and long before the simulation's
time-stepping loop begins — while PMT instrumentation only measures the
loop. The difference between the two is the setup energy the paper
identifies (job launching + application initialization, with GPUs
idle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class JobState(enum.Enum):
    """Subset of Slurm job states."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    PREEMPTED = "PREEMPTED"


#: Slurm's symbolic --gpu-freq keywords.
GPU_FREQ_KEYWORDS = ("low", "medium", "high", "highm1")


def resolve_gpu_freq_keyword(
    keyword: str, supported_clocks_mhz: "list[float]"
) -> float:
    """Resolve a symbolic ``--gpu-freq`` value against supported clocks.

    Slurm semantics: ``low``/``high`` are the extremes, ``medium`` is
    the middle of the supported list, ``highm1`` is one bin below the
    maximum.
    """
    clocks = sorted(supported_clocks_mhz)
    if not clocks:
        raise ValueError("no supported clocks")
    key = keyword.lower()
    if key == "low":
        return clocks[0]
    if key == "high":
        return clocks[-1]
    if key == "highm1":
        return clocks[-2] if len(clocks) > 1 else clocks[-1]
    if key == "medium":
        return clocks[len(clocks) // 2]
    raise ValueError(
        f"unknown --gpu-freq keyword {keyword!r} "
        f"(known: {', '.join(GPU_FREQ_KEYWORDS)})"
    )


@dataclass
class JobSpec:
    """What ``sbatch`` was asked for.

    ``gpu_freq_mhz`` / ``cpu_freq_khz`` mirror Slurm's ``--gpu-freq``
    and ``--cpu-freq`` flags (§II-B); they only take effect on systems
    whose centre allows user frequency control. ``gpu_freq_mhz`` may be
    a number or one of the symbolic keywords ``low``, ``medium``,
    ``high``, ``highm1``.
    """

    name: str
    n_nodes: int
    n_tasks: int
    account: str = "csstaff"
    partition: str = "normal"
    gpu_freq_mhz: "Optional[float | str]" = None
    cpu_freq_khz: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.n_tasks < 1:
            raise ValueError("jobs need at least one node and one task")
        if self.n_tasks < self.n_nodes:
            raise ValueError("cannot have fewer tasks than nodes")
        if isinstance(self.gpu_freq_mhz, str):
            if self.gpu_freq_mhz.lower() not in GPU_FREQ_KEYWORDS:
                raise ValueError(
                    f"unknown --gpu-freq keyword {self.gpu_freq_mhz!r}"
                )


@dataclass
class Job:
    """A submitted job and its lifecycle timestamps (simulated seconds)."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Node-level energy counter values when accounting opened, by node.
    energy_at_start_j: Dict[str, float] = field(default_factory=dict)
    #: ... and when it closed.
    energy_at_end_j: Dict[str, float] = field(default_factory=dict)
    #: Result object returned by the application callable.
    result: object = None

    @property
    def elapsed_s(self) -> float:
        """Job elapsed time (start to end of the allocation)."""
        if self.start_time is None or self.end_time is None:
            raise RuntimeError("job has not completed")
        return self.end_time - self.start_time

    @property
    def consumed_energy_j(self) -> float:
        """Slurm's ConsumedEnergy: sum of per-node counter deltas."""
        if not self.energy_at_end_j:
            raise RuntimeError("job has no closed accounting window")
        return sum(
            self.energy_at_end_j[node] - self.energy_at_start_j[node]
            for node in self.energy_at_end_j
        )
