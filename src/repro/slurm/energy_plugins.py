"""Slurm ``acct_gather_energy`` plugin models.

Depending on the system, Slurm's energy backend is ``pm_counters``
(HPE/Cray OOB telemetry), ``ipmi`` (BMC sensors) or ``rapl`` (CPU-only
MSRs) — paper §II-A. Each plugin reads a per-node cumulative joule
value; ConsumedEnergy is the sum over nodes of (end - start).

The plugins differ in *coverage* and *staleness*:

* ``pm_counters`` — whole node, 10 Hz publish staleness (read through
  the :class:`~repro.craypm.PmCounters` emulation);
* ``ipmi``       — whole node, BMC integer-joule resolution;
* ``rapl``       — CPU packages only: it structurally *misses* the GPUs,
  which is why GPU-heavy jobs must not be accounted with it.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..craypm import PmCounters
from ..hardware.node import ComputeNode

#: A plugin maps a node (plus optional pm_counters view) to joules.
EnergyReader = Callable[[ComputeNode, "PmCounters | None"], float]


def read_pm_counters(node: ComputeNode, pm: "PmCounters | None") -> float:
    """Whole-node joules from the Cray OOB feed (publish-tick stale)."""
    if pm is None:
        raise ValueError(
            f"node {node.name} has no pm_counters but the pm_counters "
            "plugin is configured"
        )
    return pm.read_energy_j("energy")


def read_ipmi(node: ComputeNode, pm: "PmCounters | None") -> float:
    """Whole-node joules from the BMC (integer-joule resolution)."""
    return float(int(node.node_energy_j))


def read_rapl(node: ComputeNode, pm: "PmCounters | None") -> float:
    """CPU-package joules only — RAPL does not see accelerators."""
    return node.cpu_energy_j


_PLUGINS: Dict[str, EnergyReader] = {
    "pm_counters": read_pm_counters,
    "ipmi": read_ipmi,
    "rapl": read_rapl,
}


def get_plugin(name: str) -> EnergyReader:
    """Look up an acct_gather_energy plugin by its Slurm name."""
    try:
        return _PLUGINS[name]
    except KeyError:
        known = ", ".join(sorted(_PLUGINS))
        raise ValueError(
            f"unknown acct_gather_energy plugin {name!r} (known: {known})"
        ) from None
