"""Slurm accounting database and ``sacct``-style queries.

Energy accounting is only recorded when ``energy`` is present in the
``AccountingStorageTRES`` list (paper §II-A). ``sacct`` formats
ConsumedEnergy the way Slurm does: joules with K/M/G suffixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .job import Job, JobState

#: Default trackable resources; sites append "energy" to enable
#: ConsumedEnergy reporting.
DEFAULT_TRES = ("cpu", "mem", "node", "billing")


def format_consumed_energy(joules: float) -> str:
    """Format joules as sacct prints ConsumedEnergy (K/M/G suffixes)."""
    if joules >= 1e9:
        return f"{joules / 1e9:.2f}G"
    if joules >= 1e6:
        return f"{joules / 1e6:.2f}M"
    if joules >= 1e3:
        return f"{joules / 1e3:.2f}K"
    return f"{joules:.0f}"


def format_elapsed(seconds: float) -> str:
    """Format seconds as sacct's [DD-]HH:MM:SS."""
    total = int(round(seconds))
    days, rem = divmod(total, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{days}-{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


@dataclass
class AccountingDatabase:
    """slurmdbd stand-in: completed-job records plus TRES configuration."""

    tres: Sequence[str] = field(default_factory=lambda: list(DEFAULT_TRES))
    jobs: Dict[int, Job] = field(default_factory=dict)

    @property
    def energy_accounting_enabled(self) -> bool:
        return "energy" in self.tres

    def enable_energy_accounting(self) -> None:
        """Append ``energy`` to AccountingStorageTRES."""
        if not self.energy_accounting_enabled:
            self.tres = list(self.tres) + ["energy"]

    def record(self, job: Job) -> None:
        self.jobs[job.job_id] = job

    def sacct(
        self,
        job_id: Optional[int] = None,
        fields: Sequence[str] = (
            "JobID",
            "JobName",
            "State",
            "Elapsed",
            "ConsumedEnergy",
        ),
    ) -> List[Dict[str, str]]:
        """Query completed jobs; returns one dict per job, field->string.

        ``ConsumedEnergyRaw`` gives undecorated joules, as sacct does.
        """
        selected = (
            [self.jobs[job_id]] if job_id is not None else list(self.jobs.values())
        )
        rows = []
        for job in selected:
            row: Dict[str, str] = {}
            for f in fields:
                row[f] = self._field(job, f)
            rows.append(row)
        return rows

    def _field(self, job: Job, name: str) -> str:
        if name == "JobID":
            return str(job.job_id)
        if name == "JobName":
            return job.spec.name
        if name == "State":
            return job.state.value
        if name == "Elapsed":
            if job.state is not JobState.COMPLETED:
                return "00:00:00"
            return format_elapsed(job.elapsed_s)
        if name == "NNodes":
            return str(job.spec.n_nodes)
        if name == "NTasks":
            return str(job.spec.n_tasks)
        if name == "Partition":
            return job.spec.partition
        if name == "Account":
            return job.spec.account
        if name in ("ConsumedEnergy", "ConsumedEnergyRaw"):
            if not self.energy_accounting_enabled:
                return ""
            # Failed jobs report the energy consumed up to the failure,
            # as real sacct does; only never-started jobs report zero.
            if not job.energy_at_end_j:
                return "0"
            joules = job.consumed_energy_j
            if name == "ConsumedEnergyRaw":
                return str(int(round(joules)))
            return format_consumed_energy(joules)
        raise ValueError(f"unknown sacct field {name!r}")
