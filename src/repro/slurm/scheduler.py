"""Slurm controller: job lifecycle on a simulated cluster.

The controller owns the timing semantics that create the paper's Fig. 3
PMT-vs-Slurm gap: the energy accounting window opens at *job start*
(after scheduling but before the application does anything), while the
application's own PMT instrumentation only opens at the simulation's
time-stepping loop. Job launch (prolog, srun, binary load, MPI wire-up)
advances simulated time with every GPU idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..faults.injector import JobPreempted
from .accounting import AccountingDatabase
from .energy_plugins import get_plugin
from .job import Job, JobSpec, JobState, resolve_gpu_freq_keyword


@dataclass(frozen=True)
class JobSetupModel:
    """Durations of the pre-application job phases (simulated seconds)."""

    #: Scheduling delay + prolog before the allocation starts.
    scheduling_s: float = 4.0
    #: srun launch base cost (binary broadcast, PMI wire-up).
    launch_base_s: float = 6.0
    #: Additional launch cost per node (scales with allocation size).
    launch_per_node_s: float = 0.25

    def setup_s(self, n_nodes: int) -> float:
        return self.scheduling_s + self.launch_base_s + self.launch_per_node_s * n_nodes


class SlurmController:
    """Submits jobs onto a :class:`~repro.systems.Cluster`-like object.

    The cluster object must provide ``nodes``, ``pm_counters`` (possibly
    empty), ``clocks``, ``comm``, ``apply_gpu_frequency_mhz`` and the
    ``system`` preset (for the energy plugin name).
    """

    def __init__(
        self,
        accounting: AccountingDatabase | None = None,
        setup_model: JobSetupModel | None = None,
        telemetry=None,
    ) -> None:
        self.accounting = accounting or AccountingDatabase()
        self.setup_model = setup_model or JobSetupModel()
        #: Optional :class:`~repro.telemetry.TraceCollector`; the job
        #: phases (scheduling+launch, accounting window) are emitted as
        #: spans on the job track so the PMT-vs-Slurm gap of Fig. 3 is
        #: visible directly in the trace.
        self.telemetry = telemetry
        self._next_job_id = 1000

    def submit(
        self,
        spec: JobSpec,
        cluster: Any,
        app: Callable[[Any, Job], Any],
    ) -> Job:
        """Run ``app(cluster, job)`` under full Slurm accounting.

        Blocking (the simulation is single-process): returns the
        completed job with its accounting window closed and recorded.
        """
        if spec.n_nodes != len(cluster.nodes):
            raise ValueError(
                f"job requests {spec.n_nodes} nodes but the allocation "
                f"has {len(cluster.nodes)}"
            )
        job = Job(job_id=self._next_job_id, spec=spec)
        self._next_job_id += 1
        job.submit_time = max(c.now for c in cluster.clocks)

        # Scheduling + launch: all ranks idle through the setup window.
        setup = self.setup_model.setup_s(spec.n_nodes)
        for clock in cluster.clocks:
            clock.advance(setup)

        # The accounting window opens at job start.
        plugin = get_plugin(cluster.system.slurm_energy_plugin)
        job.start_time = max(c.now for c in cluster.clocks)
        job.state = JobState.RUNNING
        job.energy_at_start_j = self._read_all(plugin, cluster)
        self._emit_phase(
            "slurm:scheduling+launch", job, job.submit_time, job.start_time
        )

        # --gpu-freq takes effect at launch, if the centre allows it.
        if spec.gpu_freq_mhz is not None:
            if not cluster.system.allow_user_freq_control:
                raise PermissionError(
                    f"{cluster.system.name} does not allow user GPU "
                    "frequency control"
                )
            freq = spec.gpu_freq_mhz
            if isinstance(freq, str):
                supported = [
                    hz / 1e6
                    for hz in cluster.gpus[0].spec.supported_clocks_hz()
                ]
                freq = resolve_gpu_freq_keyword(freq, supported)
            cluster.apply_gpu_frequency_mhz(freq)

        # --cpu-freq (centres allow this broadly; cf. ARCHER2 [24]).
        if spec.cpu_freq_khz is not None:
            cluster.apply_cpu_frequency_khz(spec.cpu_freq_khz)

        try:
            job.result = app(cluster, job)
        except JobPreempted:
            # Preemption is a scheduler decision, not an application
            # failure: close the accounting window (Slurm accounts the
            # consumed allocation) and return the job as PREEMPTED.
            job.state = JobState.PREEMPTED
            job.end_time = max(c.now for c in cluster.clocks)
            job.energy_at_end_j = self._read_all(plugin, cluster)
            self.accounting.record(job)
            self._emit_phase(
                "slurm:accounting-window", job, job.start_time, job.end_time
            )
            return job
        except Exception:
            job.state = JobState.FAILED
            job.end_time = max(c.now for c in cluster.clocks)
            job.energy_at_end_j = self._read_all(plugin, cluster)
            self.accounting.record(job)
            self._emit_phase(
                "slurm:accounting-window", job, job.start_time, job.end_time
            )
            raise

        # Epilog barrier, then close the accounting window.
        cluster.comm.barrier()
        job.end_time = max(c.now for c in cluster.clocks)
        job.energy_at_end_j = self._read_all(plugin, cluster)
        job.state = JobState.COMPLETED
        self.accounting.record(job)
        self._emit_phase(
            "slurm:accounting-window", job, job.start_time, job.end_time
        )
        return job

    def _emit_phase(self, name: str, job: Job, t0: float, t1: float) -> None:
        if self.telemetry is not None:
            self.telemetry.emit_phase(
                name,
                rank=0,
                t0=t0,
                t1=t1,
                job_id=job.job_id,
                job_name=job.spec.name,
                state=job.state.name,
            )

    @staticmethod
    def _read_all(plugin, cluster: Any) -> dict:
        readings = {}
        for idx, node in enumerate(cluster.nodes):
            pm = cluster.pm_counters[idx] if cluster.pm_counters else None
            readings[node.name] = plugin(node, pm)
        return readings
