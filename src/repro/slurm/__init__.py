"""Slurm job management + energy accounting emulation (DESIGN.md §2)."""

from .accounting import (
    DEFAULT_TRES,
    AccountingDatabase,
    format_consumed_energy,
    format_elapsed,
)
from .energy_plugins import get_plugin, read_ipmi, read_pm_counters, read_rapl
from .job import (
    GPU_FREQ_KEYWORDS,
    Job,
    JobSpec,
    JobState,
    resolve_gpu_freq_keyword,
)
from .scheduler import JobSetupModel, SlurmController

__all__ = [
    "DEFAULT_TRES",
    "AccountingDatabase",
    "format_consumed_energy",
    "format_elapsed",
    "get_plugin",
    "read_ipmi",
    "read_pm_counters",
    "read_rapl",
    "GPU_FREQ_KEYWORDS",
    "Job",
    "JobSpec",
    "JobState",
    "resolve_gpu_freq_keyword",
    "JobSetupModel",
    "SlurmController",
]
