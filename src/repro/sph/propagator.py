"""The SPH-EXA time-stepping loop: ordered step functions.

Each :class:`StepFunction` names one function of the paper's Fig. 5
legend, the collective communication it ends with (if any), and — when
a numeric problem is attached — the real physics it runs. The
hydro propagator covers Subsonic Turbulence; the hydro+gravity
propagator adds ``Gravity`` for Evrard Collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class StepFunction:
    """One instrumented function of the time-stepping loop.

    Attributes
    ----------
    name:
        Function name as it appears in the paper's figures.
    collective:
        ``None``, ``"allreduce"`` (e.g. the global dt minimum) or
        ``"exchange"`` (domain/halo particle exchange).
    collective_bytes_per_rank:
        Payload of the collective per rank, bytes (model mode; numeric
        mode derives real values from the exchange plans).
    host_overhead_s:
        Host-side time at the end of the function with the GPU idle
        (computing the physical time, bookkeeping, I/O). This is the
        window in which the DVFS governor clocks down below 1000 MHz at
        the end of each step (paper §IV-E / Fig. 9).
    """

    name: str
    collective: Optional[str] = None
    collective_bytes_per_rank: float = 0.0
    host_overhead_s: float = 0.0


#: Hydro-only loop (Subsonic Turbulence).
HYDRO_FUNCTIONS: tuple = (
    StepFunction(
        "DomainDecompAndSync", collective="exchange",
        collective_bytes_per_rank=0.0,
    ),
    StepFunction("FindNeighbors"),
    StepFunction("XMass"),
    StepFunction("NormalizationGradh"),
    StepFunction("EquationOfState"),
    StepFunction("IADVelocityDivCurl"),
    StepFunction("MomentumEnergy"),
    StepFunction(
        "Timestep",
        collective="allreduce",
        collective_bytes_per_rank=8.0,
        host_overhead_s=0.12,
    ),
    StepFunction("UpdateQuantities"),
)


def hydro_propagator() -> List[StepFunction]:
    """The Subsonic Turbulence function sequence."""
    return list(HYDRO_FUNCTIONS)


def hydro_gravity_propagator() -> List[StepFunction]:
    """The Evrard Collapse sequence: gravity before MomentumEnergy."""
    functions = list(HYDRO_FUNCTIONS)
    idx = [f.name for f in functions].index("MomentumEnergy")
    functions.insert(idx, StepFunction("Gravity"))
    return functions


def propagator_for(workload_name: str) -> List[StepFunction]:
    """Propagator by workload name (Table I simulations)."""
    key = workload_name.lower()
    if "turb" in key or "sedov" in key or "sod" in key:
        return hydro_propagator()
    if "evrard" in key:
        return hydro_gravity_propagator()
    raise ValueError(f"unknown workload {workload_name!r}")
