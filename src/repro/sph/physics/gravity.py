"""Gravity: Barnes-Hut octree gravity (the Evrard collapse needs it).

A monopole Barnes-Hut solver with the standard geometric opening
criterion ``size / d < theta``. The tree is built recursively on index
arrays; force evaluation recurses through the tree with the opening
test vectorized over all still-interested target particles, and direct
summation at leaves. Softened point-mass interactions (Plummer) keep
close encounters finite.

This is the most compute-intense function after MomentumEnergy, which
is why Evrard runs spend a visible extra GPU-energy slice on it
(Fig. 5, right panels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..particles import ParticleSet

#: Maximum particles in a leaf node.
LEAF_SIZE = 16


@dataclass
class _BHNode:
    center: np.ndarray  # geometric center (3,)
    half_size: float
    indices: np.ndarray  # particle indices (leaves only)
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    children: List["_BHNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _build(pos: np.ndarray, m: np.ndarray, idx: np.ndarray,
           center: np.ndarray, half_size: float) -> _BHNode:
    node = _BHNode(center=center, half_size=half_size, indices=idx)
    node.mass = float(np.sum(m[idx]))
    if node.mass > 0.0:
        node.com = (
            np.sum(pos[idx] * m[idx, None], axis=0) / node.mass
        )
    else:
        node.com = np.copy(center)
    if len(idx) <= LEAF_SIZE:
        return node
    quarter = half_size / 2.0
    p = pos[idx]
    octant = (
        (p[:, 0] >= center[0]).astype(np.int8)
        | ((p[:, 1] >= center[1]).astype(np.int8) << 1)
        | ((p[:, 2] >= center[2]).astype(np.int8) << 2)
    )
    for o in range(8):
        sub = idx[octant == o]
        if len(sub) == 0:
            continue
        offset = np.array(
            [
                quarter if o & 1 else -quarter,
                quarter if o & 2 else -quarter,
                quarter if o & 4 else -quarter,
            ]
        )
        node.children.append(
            _build(pos, m, sub, center + offset, quarter)
        )
    # Guard: all particles in one octant at zero extent -> keep as leaf.
    if len(node.children) == 1 and len(node.children[0].indices) == len(idx):
        node.children = []
    return node


def build_gravity_tree(particles: ParticleSet) -> _BHNode:
    """Build a Barnes-Hut tree over the particle set."""
    pos = particles.positions()
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = 0.5 * (lo + hi)
    half = float(np.max(hi - lo)) / 2.0 + 1e-12
    return _build(
        pos, particles.m, np.arange(particles.n, dtype=np.int64), center, half
    )


def _accumulate(
    node: _BHNode,
    pos: np.ndarray,
    m: np.ndarray,
    targets: np.ndarray,
    acc: np.ndarray,
    theta: float,
    softening2: float,
    g: float,
) -> None:
    if len(targets) == 0 or node.mass <= 0.0:
        return
    d = node.com[None, :] - pos[targets]
    dist2 = np.sum(d * d, axis=1)
    size = 2.0 * node.half_size
    if node.is_leaf:
        # Direct summation against every particle in the leaf.
        for j in node.indices:
            dj = pos[j][None, :] - pos[targets]
            r2 = np.sum(dj * dj, axis=1) + softening2
            not_self = targets != j
            # Self-pairs may have r2 == 0 when unsoftened; mask first.
            safe_r2 = np.where(not_self, r2, 1.0)
            inv_r3 = np.where(not_self, safe_r2**-1.5, 0.0)
            acc[targets] += g * m[j] * dj * inv_r3[:, None]
        return
    accept = dist2 > (size / theta) ** 2
    far = targets[accept]
    if len(far):
        r2 = dist2[accept] + softening2
        inv_r3 = r2 ** -1.5
        acc[far] += g * node.mass * d[accept] * inv_r3[:, None]
    near = targets[~accept]
    if len(near):
        for child in node.children:
            _accumulate(child, pos, m, near, acc, theta, softening2, g)


@dataclass(frozen=True)
class GravityConfig:
    """Barnes-Hut parameters."""

    theta: float = 0.5
    softening: float = 0.01
    G: float = 1.0


def compute_gravity(
    particles: ParticleSet,
    config: GravityConfig = GravityConfig(),
    tree: Optional[_BHNode] = None,
) -> np.ndarray:
    """Gravitational accelerations (n, 3) via Barnes-Hut monopoles."""
    if particles.n == 0:
        return np.zeros((0, 3))
    root = tree if tree is not None else build_gravity_tree(particles)
    pos = particles.positions()
    acc = np.zeros((particles.n, 3))
    _accumulate(
        root,
        pos,
        particles.m,
        np.arange(particles.n, dtype=np.int64),
        acc,
        config.theta,
        config.softening**2,
        config.G,
    )
    return acc


def compute_gravity_direct(
    particles: ParticleSet, config: GravityConfig = GravityConfig()
) -> np.ndarray:
    """O(n^2) direct summation (tests / small-N reference)."""
    pos = particles.positions()
    acc = np.zeros((particles.n, 3))
    for i in range(particles.n):
        d = pos - pos[i]
        r2 = np.sum(d * d, axis=1) + config.softening**2
        r2[i] = 1.0  # self-pair excluded below; avoid 0 ** -1.5
        inv_r3 = r2 ** -1.5
        inv_r3[i] = 0.0
        acc[i] = config.G * np.sum(
            particles.m[:, None] * d * inv_r3[:, None], axis=0
        )
    return acc


def potential_energy(
    particles: ParticleSet, config: GravityConfig = GravityConfig()
) -> float:
    """Exact pairwise (softened) potential energy, O(n^2) — diagnostics."""
    pos = particles.positions()
    total = 0.0
    for i in range(particles.n - 1):
        d = pos[i + 1 :] - pos[i]
        r = np.sqrt(np.sum(d * d, axis=1) + config.softening**2)
        total -= config.G * particles.m[i] * float(
            np.sum(particles.m[i + 1 :] / r)
        )
    return total
