"""MomentumEnergy: SPH momentum and energy equations.

The production formulation of SPH-EXA uses IAD gradients; here we use
the classic, extensively-validated grad-h variational form with kernel
gradients (Springel & Hernquist 2002) plus Monaghan artificial
viscosity with a Balsara-style limiter fed by the IAD div/curl fields:

    dv_i/dt = - sum_j m_j [ p_i / (Omega_i rho_i^2) gradW_ij(h_i)
                          + p_j / (Omega_j rho_j^2) gradW_ij(h_j)
                          + Pi_ij gradW_ij_bar ]

    du_i/dt =  p_i / (Omega_i rho_i^2) sum_j m_j v_ij . gradW_ij(h_i)
             + 0.5 sum_j m_j Pi_ij v_ij . gradW_ij_bar

It is by far the most expensive per-step kernel (several pair sweeps
with gradients and branches), which is why it dominates GPU energy and
tunes to the maximum clock in the paper (Figs. 2, 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import StepGeometry, scatter_sum
from ..kernels_math import SmoothingKernel
from ..neighbors import NeighborList
from ..particles import ParticleSet


@dataclass(frozen=True)
class ArtificialViscosity:
    """Monaghan (1992) AV parameters with a Balsara (1995) limiter."""

    alpha: float = 1.0
    beta: float = 2.0
    epsilon: float = 0.01
    use_balsara: bool = True

    def balsara_factor(self, particles: ParticleSet) -> np.ndarray:
        """Per-particle shear limiter f = |divv| / (|divv| + |curlv| + eps)."""
        if not self.use_balsara:
            return np.ones(particles.n)
        divv = np.abs(particles.divv)
        curlv = np.abs(particles.curlv)
        mean_h = np.maximum(particles.h, 1e-300)
        eps = 1e-4 * particles.c / mean_h
        return divv / (divv + curlv + eps)


def compute_momentum_energy(
    particles: ParticleSet,
    nlist: NeighborList,
    kernel: SmoothingKernel,
    av: ArtificialViscosity = ArtificialViscosity(),
    box_size: Optional[float] = None,
    external_ax: Optional[np.ndarray] = None,
    external_ay: Optional[np.ndarray] = None,
    external_az: Optional[np.ndarray] = None,
    geometry: Optional[StepGeometry] = None,
) -> None:
    """Fill ``ax, ay, az, du`` in place.

    ``external_a*`` add body accelerations (gravity, turbulence driving)
    after the hydrodynamic sums.
    """
    for req in ("rho", "p", "c", "gradh"):
        if getattr(particles, req) is None:
            raise ValueError(f"{req} must be computed before MomentumEnergy")
    particles.ensure_derived()

    # Momentum conservation requires action *and* reaction: with
    # adaptive h the gather lists are asymmetric, so close the pair set
    # under reversal before summing forces. The closure (and all pair
    # displacements) comes cached from the shared step geometry. The
    # force coefficient is invariant under i <-> j, so each undirected
    # pair is evaluated once and scattered to both endpoints — half the
    # gathers and kernel-gradient work of a directed sweep. Self-pairs
    # (i == j) contribute nothing (dx = 0, v.r = 0) and are dropped by
    # the i < j mask.
    geom = geometry if geometry is not None else StepGeometry.build(
        particles, nlist, box_size
    )
    und = geom.undirected()
    i_idx, j_idx = und.i_idx, und.j_idx
    dx, dy, dz, r = und.dx, und.dy, und.dz, und.r
    h_i = particles.h[i_idx]
    h_j = particles.h[j_idx]

    # Kernel gradients at both smoothing lengths; dW/dr < 0, direction
    # d/r with d = r_i - r_j so gradW points from j toward i.
    grad_i = kernel.grad_r(r, h_i) / r
    grad_j = kernel.grad_r(r, h_j) / r
    grad_bar = 0.5 * (grad_i + grad_j)

    rho_i = particles.rho[i_idx]
    rho_j = particles.rho[j_idx]
    p_over = particles.p / (particles.gradh * particles.rho**2)
    pi_term = p_over[i_idx]
    pj_term = p_over[j_idx]

    dvx = particles.vx[i_idx] - particles.vx[j_idx]
    dvy = particles.vy[i_idx] - particles.vy[j_idx]
    dvz = particles.vz[i_idx] - particles.vz[j_idx]
    v_dot_r = dvx * dx + dvy * dy + dvz * dz

    # Artificial viscosity (active on approaching pairs only).
    h_bar = 0.5 * (h_i + h_j)
    rho_bar = 0.5 * (rho_i + rho_j)
    c_bar = 0.5 * (particles.c[i_idx] + particles.c[j_idx])
    mu = h_bar * v_dot_r / (r * r + av.epsilon * h_bar * h_bar)
    mu = np.where(v_dot_r < 0.0, mu, 0.0)
    balsara = av.balsara_factor(particles)
    f_bar = 0.5 * (balsara[i_idx] + balsara[j_idx])
    visc = f_bar * (-av.alpha * c_bar * mu + av.beta * mu * mu) / rho_bar

    m_i = particles.m[i_idx]
    m_j = particles.m[j_idx]
    # Symmetric pair force coefficient: the mirrored pair (j, i) has
    # the same s with displacement -d, so i gets -m_j s d and j gets
    # +m_i s d — exact action/reaction per pair.
    s = pi_term * grad_i + pj_term * grad_j + visc * grad_bar

    n = particles.n
    ax = scatter_sum(i_idx, -m_j * s * dx, n) + scatter_sum(
        j_idx, m_i * s * dx, n
    )
    ay = scatter_sum(i_idx, -m_j * s * dy, n) + scatter_sum(
        j_idx, m_i * s * dy, n
    )
    az = scatter_sum(i_idx, -m_j * s * dz, n) + scatter_sum(
        j_idx, m_i * s * dz, n
    )

    # Energy equation: pdV work + viscous heating. v.r is symmetric
    # under the swap, so each endpoint takes its own pdV term plus half
    # the (shared) viscous heating.
    half_heat = 0.5 * visc * grad_bar * v_dot_r
    du = scatter_sum(
        i_idx, m_j * (pi_term * grad_i * v_dot_r + half_heat), n
    ) + scatter_sum(
        j_idx, m_i * (pj_term * grad_j * v_dot_r + half_heat), n
    )

    if external_ax is not None:
        ax += external_ax
    if external_ay is not None:
        ay += external_ay
    if external_az is not None:
        az += external_az

    particles.ax, particles.ay, particles.az = ax, ay, az
    particles.du = du


def signal_velocity(
    particles: ParticleSet,
    nlist: NeighborList,
    box_size: Optional[float] = None,
    geometry: Optional[StepGeometry] = None,
) -> np.ndarray:
    """Maximum pairwise signal velocity per particle (time-step control).

    v_sig = max_j (c_i + c_j - 3 min(0, v_ij . r_ij / |r_ij|)).

    Pairs are symmetrized so a fast approaching pair limits the time
    step of *both* endpoints even with asymmetric adaptive-h lists; the
    closure is shared with MomentumEnergy through the step geometry.
    """
    geom = geometry if geometry is not None else StepGeometry.build(
        particles, nlist, box_size
    )
    sym = geom.symmetric()
    i_idx, j_idx = sym.i_idx, sym.j_idx
    dvx = particles.vx[i_idx] - particles.vx[j_idx]
    dvy = particles.vy[i_idx] - particles.vy[j_idx]
    dvz = particles.vz[i_idx] - particles.vz[j_idx]
    vdotr_unit = (dvx * sym.dx + dvy * sym.dy + dvz * sym.dz) / sym.r
    pair_vsig = (
        particles.c[i_idx]
        + particles.c[j_idx]
        - 3.0 * np.minimum(vdotr_unit, 0.0)
    )
    return geom.sym_scatter_max(pair_vsig, particles.c)
