"""UpdateQuantities: time integration of positions, velocities, energy.

A kick-drift update (as SPH-EXA's ``computePositions``): velocities are
kicked by the freshly computed accelerations, positions drift with the
new velocities, internal energy integrates ``du`` with a positivity
floor, periodic domains wrap, and adaptive smoothing lengths relax
toward the target neighbor count

    h <- h * 0.5 * (1 + (n_target / (n_actual + 1))^(1/3)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..neighbors import NeighborList
from ..particles import ParticleSet


@dataclass(frozen=True)
class IntegrationConfig:
    """Integrator knobs."""

    target_neighbors: int = 100
    u_floor: float = 1e-12
    #: Per-step relative change limit on h (stability guard).
    h_change_limit: float = 0.2


def update_quantities(
    particles: ParticleSet,
    dt: float,
    nlist: Optional[NeighborList] = None,
    config: IntegrationConfig = IntegrationConfig(),
    box_size: Optional[float] = None,
) -> None:
    """Advance the particle state by ``dt`` in place."""
    if dt <= 0.0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    if particles.ax is None or particles.du is None:
        raise ValueError("MomentumEnergy must run before UpdateQuantities")

    # Kick.
    particles.vx += particles.ax * dt
    particles.vy += particles.ay * dt
    particles.vz += particles.az * dt
    # Drift.
    particles.x += particles.vx * dt
    particles.y += particles.vy * dt
    particles.z += particles.vz * dt
    if box_size is not None:
        np.mod(particles.x, box_size, out=particles.x)
        np.mod(particles.y, box_size, out=particles.y)
        np.mod(particles.z, box_size, out=particles.z)
    # Internal energy with positivity floor.
    particles.u = np.maximum(particles.u + particles.du * dt, config.u_floor)

    if nlist is not None:
        update_smoothing_lengths(particles, nlist, config)


def update_smoothing_lengths(
    particles: ParticleSet,
    nlist: NeighborList,
    config: IntegrationConfig = IntegrationConfig(),
) -> None:
    """Relax h toward the target neighbor count in place."""
    counts = nlist.counts().astype(np.float64)
    factor = 0.5 * (
        1.0 + np.cbrt(config.target_neighbors / (counts + 1.0))
    )
    lo = 1.0 - config.h_change_limit
    hi = 1.0 + config.h_change_limit
    particles.h *= np.clip(factor, lo, hi)
