"""NormalizationGradh: density normalization and grad-h correction.

From the XMass kernel sums, the density is

    rho_i = kx_i * m_i / xm_i            (= kx_i for xm = m)

and the grad-h (Omega) correction factor of the variational
formulation (Springel & Hernquist 2002) is

    Omega_i = 1 + (h_i / (3 rho_i)) * sum_j m_j dW/dh(r_ij, h_i)

stored in the ``gradh`` field and used to correct the momentum and
energy equations for adaptive smoothing lengths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import StepGeometry, scatter_sum
from ..kernels_math import SmoothingKernel
from ..neighbors import NeighborList
from ..particles import ParticleSet


def compute_density_gradh(
    particles: ParticleSet,
    nlist: NeighborList,
    kernel: SmoothingKernel,
    box_size: Optional[float] = None,
    geometry: Optional[StepGeometry] = None,
) -> None:
    """Fill ``rho`` and ``gradh`` in place (requires XMass)."""
    if particles.kx is None or particles.xm is None:
        raise ValueError("XMass must run before NormalizationGradh")
    particles.ensure_derived()
    particles.rho = particles.kx * particles.m / particles.xm

    geom = geometry if geometry is not None else StepGeometry.build(
        particles, nlist, box_size
    )
    i_idx, j_idx = geom.i_idx, geom.j_idx
    dwdh = kernel.grad_h(geom.r, particles.h[i_idx])
    sum_dwdh = scatter_sum(i_idx, particles.m[j_idx] * dwdh, particles.n)
    # Self term: dW/dh at r=0 is -3 sigma w(0) / h^4.
    sum_dwdh += particles.m * (
        -3.0 * kernel.self_value(particles.h) / particles.h
    )
    omega = 1.0 + particles.h / (3.0 * np.maximum(particles.rho, 1e-300)) * sum_dwdh
    # Keep the correction within sane bounds for pathological particle
    # distributions (isolated particles, IC transients).
    particles.gradh = np.clip(omega, 0.2, 3.0)
