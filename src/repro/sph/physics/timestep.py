"""Timestep: CFL time-step determination.

Each rank computes its local minimum admissible step

    dt_i = C_cfl * h_i / vsig_i

(plus an acceleration limiter dt_a = sqrt(h / |a|)), then the global
step is the all-reduce minimum over ranks — the small end-of-step
collective whose communication window lets the DVFS governor drop the
GPU clock below 1000 MHz in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import StepGeometry
from ..neighbors import NeighborList
from ..particles import ParticleSet
from .momentum_energy import signal_velocity


@dataclass(frozen=True)
class TimestepControl:
    """CFL-style step control parameters."""

    cfl: float = 0.3
    accel_factor: float = 0.25
    max_growth: float = 1.2
    initial_dt: float = 1e-4
    max_dt: float = float("inf")


def local_timestep(
    particles: ParticleSet,
    nlist: NeighborList,
    control: TimestepControl = TimestepControl(),
    previous_dt: Optional[float] = None,
    box_size: Optional[float] = None,
    geometry: Optional[StepGeometry] = None,
) -> float:
    """This rank's minimum admissible dt (before the global reduction)."""
    if particles.c is None:
        raise ValueError("sound speed must be computed before Timestep")
    vsig = signal_velocity(particles, nlist, box_size, geometry=geometry)
    dt_cfl = control.cfl * np.min(particles.h / np.maximum(vsig, 1e-300))
    dt = float(dt_cfl)
    if particles.ax is not None:
        a = np.sqrt(particles.ax**2 + particles.ay**2 + particles.az**2)
        amax_h = a / np.maximum(particles.h, 1e-300)
        nonzero = amax_h > 1e-300
        if np.any(nonzero):
            dt_acc = control.accel_factor * float(
                np.min(1.0 / np.sqrt(amax_h[nonzero]))
            )
            dt = min(dt, dt_acc)
    if previous_dt is not None:
        dt = min(dt, control.max_growth * previous_dt)
    return min(dt, control.max_dt)
