"""IADVelocityDivCurl: Integral Approach to Derivatives + div/curl v.

The IAD scheme (Garcia-Senz et al. 2012, used by SPHYNX and SPH-EXA)
replaces kernel-gradient derivatives with a linearly-exact integral
estimate. Per particle, build the symmetric moment matrix

    tau_i = sum_j V_j (r_j - r_i) (x) (r_j - r_i) W(r_ij, h_i)

and invert it; the inverse's six independent components (c11..c33,
symmetric) turn finite differences into derivative estimates:

    (grad f)_i ~= sum_j V_j (f_j - f_i) C_i (r_j - r_i) W_ij

The function computes the C tensors plus the IAD velocity divergence
and curl magnitude (used by the time-step control and AV diagnostics).
The 3x3 inversions are vectorized over all particles via closed-form
adjugates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geometry import StepGeometry, scatter_sum
from ..kernels_math import SmoothingKernel
from ..neighbors import NeighborList
from ..particles import ParticleSet


def _invert_sym3(
    t11: np.ndarray,
    t12: np.ndarray,
    t13: np.ndarray,
    t22: np.ndarray,
    t23: np.ndarray,
    t33: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Closed-form inverse of symmetric 3x3 matrices, vectorized.

    Ill-conditioned matrices (degenerate neighborhoods) fall back to an
    isotropic estimate, matching the defensive handling in production
    SPH codes.
    """
    det = (
        t11 * (t22 * t33 - t23 * t23)
        - t12 * (t12 * t33 - t23 * t13)
        + t13 * (t12 * t23 - t22 * t13)
    )
    trace = t11 + t22 + t33
    # Degenerate neighborhoods: near-singular moment matrix, or so few
    # neighbors the trace itself (and hence trace**3) underflows.
    bad = (np.abs(det) < 1e-12 * np.maximum(trace, 1e-30) ** 3) | (
        trace < 1e-30
    )
    safe_det = np.where(bad, 1.0, det)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        c11 = (t22 * t33 - t23 * t23) / safe_det
        c12 = (t13 * t23 - t12 * t33) / safe_det
        c13 = (t12 * t23 - t13 * t22) / safe_det
        c22 = (t11 * t33 - t13 * t13) / safe_det
        c23 = (t12 * t13 - t11 * t23) / safe_det
        c33 = (t11 * t22 - t12 * t12) / safe_det
    # Any residual non-finite entries count as degenerate too.
    for arr in (c11, c12, c13, c22, c23, c33):
        nonfinite = ~np.isfinite(arr)
        if np.any(nonfinite):
            bad = bad | nonfinite
            arr[nonfinite] = 0.0
    if np.any(bad):
        iso = np.where(trace > 1e-300, 3.0 / np.maximum(trace, 1e-300), 0.0)
        for arr, diag in ((c11, True), (c22, True), (c33, True)):
            arr[bad] = iso[bad]
        for arr in (c12, c13, c23):
            arr[bad] = 0.0
    return c11, c12, c13, c22, c23, c33


def compute_iad_divv_curlv(
    particles: ParticleSet,
    nlist: NeighborList,
    kernel: SmoothingKernel,
    box_size: Optional[float] = None,
    geometry: Optional[StepGeometry] = None,
) -> None:
    """Fill ``c11..c33``, ``divv`` and ``curlv`` in place."""
    if particles.rho is None or particles.kx is None:
        raise ValueError("density must be computed before IAD")
    particles.ensure_derived()

    geom = geometry if geometry is not None else StepGeometry.build(
        particles, nlist, box_size
    )
    i_idx, j_idx = geom.i_idx, geom.j_idx
    # Note the geometry stores d = r_i - r_j; IAD wants r_j - r_i.
    dx, dy, dz = -geom.dx, -geom.dy, -geom.dz
    w = kernel.value(geom.r, particles.h[i_idx])
    vol_j = (particles.xm / particles.kx)[j_idx]
    ww = vol_j * w

    n = particles.n
    t11 = scatter_sum(i_idx, ww * dx * dx, n)
    t12 = scatter_sum(i_idx, ww * dx * dy, n)
    t13 = scatter_sum(i_idx, ww * dx * dz, n)
    t22 = scatter_sum(i_idx, ww * dy * dy, n)
    t23 = scatter_sum(i_idx, ww * dy * dz, n)
    t33 = scatter_sum(i_idx, ww * dz * dz, n)

    c11, c12, c13, c22, c23, c33 = _invert_sym3(t11, t12, t13, t22, t23, t33)
    particles.c11, particles.c12, particles.c13 = c11, c12, c13
    particles.c22, particles.c23, particles.c33 = c22, c23, c33

    # IAD derivative weights A = C_i (r_j - r_i) W_ij V_j.
    ax_w = (c11[i_idx] * dx + c12[i_idx] * dy + c13[i_idx] * dz) * ww
    ay_w = (c12[i_idx] * dx + c22[i_idx] * dy + c23[i_idx] * dz) * ww
    az_w = (c13[i_idx] * dx + c23[i_idx] * dy + c33[i_idx] * dz) * ww

    dvx = particles.vx[j_idx] - particles.vx[i_idx]
    dvy = particles.vy[j_idx] - particles.vy[i_idx]
    dvz = particles.vz[j_idx] - particles.vz[i_idx]

    particles.divv = scatter_sum(
        i_idx, dvx * ax_w + dvy * ay_w + dvz * az_w, n
    )

    curl_x = scatter_sum(i_idx, dvz * ay_w - dvy * az_w, n)
    curl_y = scatter_sum(i_idx, dvx * az_w - dvz * ax_w, n)
    curl_z = scatter_sum(i_idx, dvy * ax_w - dvx * ay_w, n)
    particles.curlv = np.sqrt(curl_x**2 + curl_y**2 + curl_z**2)
