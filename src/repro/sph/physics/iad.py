"""IADVelocityDivCurl: Integral Approach to Derivatives + div/curl v.

The IAD scheme (Garcia-Senz et al. 2012, used by SPHYNX and SPH-EXA)
replaces kernel-gradient derivatives with a linearly-exact integral
estimate. Per particle, build the symmetric moment matrix

    tau_i = sum_j V_j (r_j - r_i) (x) (r_j - r_i) W(r_ij, h_i)

and invert it; the inverse's six independent components (c11..c33,
symmetric) turn finite differences into derivative estimates:

    (grad f)_i ~= sum_j V_j (f_j - f_i) C_i (r_j - r_i) W_ij

The function computes the C tensors plus the IAD velocity divergence
and curl magnitude (used by the time-step control and AV diagnostics).
The 3x3 inversions are vectorized over all particles via closed-form
adjugates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernels_math import SmoothingKernel
from ..neighbors import NeighborList, pair_displacements
from ..particles import ParticleSet


def _invert_sym3(
    t11: np.ndarray,
    t12: np.ndarray,
    t13: np.ndarray,
    t22: np.ndarray,
    t23: np.ndarray,
    t33: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Closed-form inverse of symmetric 3x3 matrices, vectorized.

    Ill-conditioned matrices (degenerate neighborhoods) fall back to an
    isotropic estimate, matching the defensive handling in production
    SPH codes.
    """
    det = (
        t11 * (t22 * t33 - t23 * t23)
        - t12 * (t12 * t33 - t23 * t13)
        + t13 * (t12 * t23 - t22 * t13)
    )
    trace = t11 + t22 + t33
    # Degenerate neighborhoods: near-singular moment matrix, or so few
    # neighbors the trace itself (and hence trace**3) underflows.
    bad = (np.abs(det) < 1e-12 * np.maximum(trace, 1e-30) ** 3) | (
        trace < 1e-30
    )
    safe_det = np.where(bad, 1.0, det)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        c11 = (t22 * t33 - t23 * t23) / safe_det
        c12 = (t13 * t23 - t12 * t33) / safe_det
        c13 = (t12 * t23 - t13 * t22) / safe_det
        c22 = (t11 * t33 - t13 * t13) / safe_det
        c23 = (t12 * t13 - t11 * t23) / safe_det
        c33 = (t11 * t22 - t12 * t12) / safe_det
    # Any residual non-finite entries count as degenerate too.
    for arr in (c11, c12, c13, c22, c23, c33):
        nonfinite = ~np.isfinite(arr)
        if np.any(nonfinite):
            bad = bad | nonfinite
            arr[nonfinite] = 0.0
    if np.any(bad):
        iso = np.where(trace > 1e-300, 3.0 / np.maximum(trace, 1e-300), 0.0)
        for arr, diag in ((c11, True), (c22, True), (c33, True)):
            arr[bad] = iso[bad]
        for arr in (c12, c13, c23):
            arr[bad] = 0.0
    return c11, c12, c13, c22, c23, c33


def compute_iad_divv_curlv(
    particles: ParticleSet,
    nlist: NeighborList,
    kernel: SmoothingKernel,
    box_size: Optional[float] = None,
) -> None:
    """Fill ``c11..c33``, ``divv`` and ``curlv`` in place."""
    if particles.rho is None or particles.kx is None:
        raise ValueError("density must be computed before IAD")
    particles.ensure_derived()

    dx, dy, dz, r, i_idx, j_idx = pair_displacements(particles, nlist, box_size)
    # Note pair_displacements returns d = r_i - r_j; IAD wants r_j - r_i.
    dx, dy, dz = -dx, -dy, -dz
    w = kernel.value(r, particles.h[i_idx])
    vol_j = (particles.xm / particles.kx)[j_idx]
    ww = vol_j * w

    n = particles.n
    t11 = np.zeros(n)
    t12 = np.zeros(n)
    t13 = np.zeros(n)
    t22 = np.zeros(n)
    t23 = np.zeros(n)
    t33 = np.zeros(n)
    np.add.at(t11, i_idx, ww * dx * dx)
    np.add.at(t12, i_idx, ww * dx * dy)
    np.add.at(t13, i_idx, ww * dx * dz)
    np.add.at(t22, i_idx, ww * dy * dy)
    np.add.at(t23, i_idx, ww * dy * dz)
    np.add.at(t33, i_idx, ww * dz * dz)

    c11, c12, c13, c22, c23, c33 = _invert_sym3(t11, t12, t13, t22, t23, t33)
    particles.c11, particles.c12, particles.c13 = c11, c12, c13
    particles.c22, particles.c23, particles.c33 = c22, c23, c33

    # IAD derivative weights A = C_i (r_j - r_i) W_ij V_j.
    ax_w = (c11[i_idx] * dx + c12[i_idx] * dy + c13[i_idx] * dz) * ww
    ay_w = (c12[i_idx] * dx + c22[i_idx] * dy + c23[i_idx] * dz) * ww
    az_w = (c13[i_idx] * dx + c23[i_idx] * dy + c33[i_idx] * dz) * ww

    dvx = particles.vx[j_idx] - particles.vx[i_idx]
    dvy = particles.vy[j_idx] - particles.vy[i_idx]
    dvz = particles.vz[j_idx] - particles.vz[i_idx]

    divv = np.zeros(n)
    np.add.at(divv, i_idx, dvx * ax_w + dvy * ay_w + dvz * az_w)
    particles.divv = divv

    curl_x = np.zeros(n)
    curl_y = np.zeros(n)
    curl_z = np.zeros(n)
    np.add.at(curl_x, i_idx, dvz * ay_w - dvy * az_w)
    np.add.at(curl_y, i_idx, dvx * az_w - dvz * ax_w)
    np.add.at(curl_z, i_idx, dvy * ax_w - dvx * ay_w)
    particles.curlv = np.sqrt(curl_x**2 + curl_y**2 + curl_z**2)
