"""XMass: generalized volume-element kernel sums (SPHYNX/SPH-EXA).

SPH-EXA's ``computeXMass`` evaluates, for every particle, the kernel
sum of the volume-element masses

    kx_i = sum_j xm_j W(r_ij, h_i)   (self term included)

with ``xm_j = m_j`` in the standard choice. The per-particle volume
element is then ``V_i = xm_i / kx_i`` and the density
``rho_i = kx_i * m_i / xm_i`` (see NormalizationGradh). Computationally
this is a full neighbor-sweep kernel — lighter than MomentumEnergy
(one scalar sum, no gradients), which is why it tunes to a low GPU
frequency in Fig. 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import StepGeometry, scatter_sum
from ..kernels_math import SmoothingKernel
from ..neighbors import NeighborList
from ..particles import ParticleSet


def compute_xmass(
    particles: ParticleSet,
    nlist: NeighborList,
    kernel: SmoothingKernel,
    box_size: Optional[float] = None,
    geometry: Optional[StepGeometry] = None,
) -> None:
    """Fill ``xm`` and ``kx`` in place.

    ``geometry`` shares one precomputed :class:`StepGeometry` across
    all pair kernels of the step; without it the pair geometry is
    derived from ``nlist`` on the spot.
    """
    particles.ensure_derived()
    particles.xm = np.copy(particles.m)

    geom = geometry if geometry is not None else StepGeometry.build(
        particles, nlist, box_size
    )
    w = kernel.value(geom.r, particles.h[geom.i_idx])
    contrib = particles.xm[geom.j_idx] * w
    kx = scatter_sum(geom.i_idx, contrib, particles.n)
    # Self contribution W(0, h_i) * xm_i.
    kx += particles.xm * kernel.self_value(particles.h)
    particles.kx = kx
