"""SPH physics kernels — the numerics behind the paper's function names."""

from .density import compute_density_gradh
from .gravity import (
    GravityConfig,
    build_gravity_tree,
    compute_gravity,
    compute_gravity_direct,
    potential_energy,
)
from .iad import compute_iad_divv_curlv
from .momentum_energy import (
    ArtificialViscosity,
    compute_momentum_energy,
    signal_velocity,
)
from .positions import (
    IntegrationConfig,
    update_quantities,
    update_smoothing_lengths,
)
from .timestep import TimestepControl, local_timestep
from .xmass import compute_xmass

__all__ = [
    "compute_density_gradh",
    "GravityConfig",
    "build_gravity_tree",
    "compute_gravity",
    "compute_gravity_direct",
    "potential_energy",
    "compute_iad_divv_curlv",
    "ArtificialViscosity",
    "compute_momentum_energy",
    "signal_velocity",
    "IntegrationConfig",
    "update_quantities",
    "update_smoothing_lengths",
    "TimestepControl",
    "local_timestep",
    "compute_xmass",
]
