"""Cell-list (linked-cell) neighbor search.

The GPU-style neighbor algorithm: bin particles into a uniform grid of
cells no smaller than the largest search radius, then compare each
particle only against the 27 surrounding cells. This is how
fixed-radius neighbor searches are actually implemented in SPH GPU
codes (and what the Cornerstone octree specializes); the KD-tree
backend of :mod:`repro.sph.neighbors` remains the default for strongly
adaptive ``h`` distributions, and the two are cross-validated in the
test suite.

Complexity: O(n * k) with k the neighbors per cell, fully vectorized
over candidate pairs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .neighbors import NeighborList
from .particles import ParticleSet


def find_neighbors_cell_list(
    particles: ParticleSet,
    support_radius: float = 2.0,
    box_size: Optional[float] = None,
) -> NeighborList:
    """Neighbor lists via a uniform cell grid.

    Semantics are identical to
    :func:`repro.sph.neighbors.find_neighbors`: all ``j != i`` with
    ``|r_ij| < support_radius * h_i``, optionally in a periodic cube.
    """
    n = particles.n
    if n == 0:
        return NeighborList(
            neighbors=np.empty(0, dtype=np.int64),
            offsets=np.zeros(1, dtype=np.int64),
        )
    pos = particles.positions()
    radii = support_radius * particles.h
    r_max = float(np.max(radii))
    if r_max <= 0:
        raise ValueError("search radii must be positive")

    if box_size is not None:
        if np.any(pos < 0.0) or np.any(pos >= box_size):
            raise ValueError(
                "positions must lie in [0, box_size) for periodic search"
            )
        lo = np.zeros(3)
        extent = np.full(3, box_size)
    else:
        lo = pos.min(axis=0)
        extent = pos.max(axis=0) - lo + 1e-12

    # Grid resolution: cells at least r_max wide (>= 1 cell per axis).
    n_cells = np.maximum((extent / r_max).astype(np.int64), 1)
    if box_size is not None:
        # Periodic wrap needs >= 3 cells per axis for distinct images;
        # fall back to fewer cells (still correct, just denser bins).
        n_cells = np.maximum(n_cells, 1)
    cell_size = extent / n_cells

    cell_idx = np.minimum(
        ((pos - lo) / cell_size).astype(np.int64), n_cells - 1
    )
    flat = (
        cell_idx[:, 0] * n_cells[1] * n_cells[2]
        + cell_idx[:, 1] * n_cells[2]
        + cell_idx[:, 2]
    )
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    total_cells = int(np.prod(n_cells))
    # CSR over cells: particles of cell c are order[start[c]:start[c+1]].
    starts = np.searchsorted(sorted_flat, np.arange(total_cells + 1))

    # Precompute neighbor cell offsets (27 or fewer when axis has 1 cell).
    offsets_1d = [
        np.array([-1, 0, 1]) if nc > 1 else np.array([0]) for nc in n_cells
    ]
    # With exactly 2 periodic cells per axis, -1 and +1 alias; dedupe.
    neighbor_offsets = []
    for dx in offsets_1d[0]:
        for dy in offsets_1d[1]:
            for dz in offsets_1d[2]:
                neighbor_offsets.append((dx, dy, dz))

    neighbor_chunks = []
    counts = np.zeros(n, dtype=np.int64)
    results_i = []
    results_j = []

    for dx, dy, dz in neighbor_offsets:
        shifted = cell_idx + np.array([dx, dy, dz])
        if box_size is not None:
            shifted = np.mod(shifted, n_cells)
        else:
            valid = np.all((shifted >= 0) & (shifted < n_cells), axis=1)
        target_flat = (
            shifted[:, 0] * n_cells[1] * n_cells[2]
            + shifted[:, 1] * n_cells[2]
            + shifted[:, 2]
        )
        if box_size is None:
            target_flat = np.where(valid, target_flat, -1)
        # Enumerate candidate pairs (i, j in target cell of i).
        ok = target_flat >= 0
        idx_i = np.where(ok)[0]
        if len(idx_i) == 0:
            continue
        cells = target_flat[idx_i]
        span = starts[cells + 1] - starts[cells]
        if span.sum() == 0:
            continue
        rep_i = np.repeat(idx_i, span)
        # Gather the j indices for each i's target cell.
        ptr = np.repeat(starts[cells], span) + _ranges(span)
        rep_j = order[ptr]
        results_i.append(rep_i)
        results_j.append(rep_j)

    if not results_i:
        return NeighborList(
            neighbors=np.empty(0, dtype=np.int64),
            offsets=np.zeros(n + 1, dtype=np.int64),
        )
    cand_i = np.concatenate(results_i)
    cand_j = np.concatenate(results_j)

    # With <= 2 cells per (periodic) axis, different offsets alias to the
    # same cell: dedupe candidate pairs.
    if box_size is not None and np.any(n_cells <= 2):
        pair_key = cand_i.astype(np.int64) * n + cand_j
        _, unique_idx = np.unique(pair_key, return_index=True)
        cand_i = cand_i[unique_idx]
        cand_j = cand_j[unique_idx]

    dxv = pos[cand_i, 0] - pos[cand_j, 0]
    dyv = pos[cand_i, 1] - pos[cand_j, 1]
    dzv = pos[cand_i, 2] - pos[cand_j, 2]
    if box_size is not None:
        dxv -= box_size * np.round(dxv / box_size)
        dyv -= box_size * np.round(dyv / box_size)
        dzv -= box_size * np.round(dzv / box_size)
    dist2 = dxv * dxv + dyv * dyv + dzv * dzv
    keep = (dist2 < radii[cand_i] ** 2) & (cand_i != cand_j)
    cand_i = cand_i[keep]
    cand_j = cand_j[keep]

    # Sort into CSR by i (then j for determinism).
    sort_key = np.lexsort((cand_j, cand_i))
    cand_i = cand_i[sort_key]
    cand_j = cand_j[sort_key]
    counts = np.bincount(cand_i, minlength=n).astype(np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return NeighborList(neighbors=cand_j, offsets=offsets)


def _ranges(span: np.ndarray) -> np.ndarray:
    """Concatenated [0..span_k) ranges, vectorized.

    Zero-length spans contribute no elements and are skipped.
    """
    nz = span[span > 0]
    total = int(nz.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(nz)
    out[0] = 0
    out[ends[:-1]] = 1 - nz[:-1]
    return np.cumsum(out)
