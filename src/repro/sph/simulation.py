"""The instrumented simulation facade.

Ties together the cluster hardware, the per-rank workload models, the
optional numeric backend, the frequency-scaling policy (through the
NVML/ROCm controller) and the energy profiler — i.e. this module *is*
the instrumented SPH-EXA of the paper:

* hooks fire around every step function (§III-B);
* the frequency controller pins application clocks before each
  function according to the active policy (§III-D);
* the energy profiler measures per-function, per-device energy per
  rank, gathered only at the end of the run (§III-B);
* Slurm-visible setup (data allocation, host-to-device transfer)
  advances simulated time *before* the instrumented window opens,
  creating the PMT-vs-Slurm gap of Fig. 3.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from ..core.controller import FrequencyController, ResilienceConfig
from ..core.energy import EnergyProfiler, EnergyReport, make_profiler
from ..core.freq_policy import FrequencyPolicy, baseline_policy
from ..core.hooks import HookRegistry
from ..faults.injector import FaultInjector, JobPreempted
from ..units import to_mhz
from .numeric import NumericProblem
from .propagator import StepFunction, propagator_for
from .workload import REFERENCE_NEIGHBORS, WorkloadModel

#: Fixed application-initialization cost (binary, IC generation, MPI).
INIT_BASE_S = 3.0

#: Per-particle allocation + host-to-device transfer time.
INIT_PER_PARTICLE_S = 3.0e-8

#: Wire bytes per model-mode halo particle.
MODEL_HALO_BYTES = 88.0


@dataclass
class SimulationResult:
    """Outcome of one instrumented run."""

    report: EnergyReport
    elapsed_s: float
    gpu_energy_j: float
    steps: int
    clock_set_calls: int
    dt_history: List[float] = field(default_factory=list)
    clock_set_skipped: int = 0
    #: Ranks whose frequency control degraded to the DVFS governor.
    degraded_ranks: List[int] = field(default_factory=list)
    #: True when the run was cut short by a (simulated) Slurm preemption.
    preempted: bool = False
    #: Faults delivered by the attached injector during the run.
    faults_injected: int = 0
    #: Transient-error retries the controller performed.
    retries: int = 0
    #: Step the run resumed from (0 = started from scratch).
    resumed_from_step: int = 0
    #: Periodic checkpoints written during this run.
    checkpoints_written: int = 0

    @property
    def edp(self) -> float:
        return self.elapsed_s * self.gpu_energy_j

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_ranks)


class Simulation:
    """One instrumented simulation on a cluster.

    Parameters
    ----------
    cluster:
        :class:`~repro.systems.Cluster` (hardware + comm already built).
    workload_name:
        ``"SubsonicTurbulence"`` or ``"EvrardCollapse"`` (Table I).
    n_particles_per_rank:
        Local problem size fed to the GPU cost model. In numeric mode
        the real decomposition counts override this each step.
    policy:
        Frequency-scaling strategy; defaults to the pinned-max baseline.
    numeric:
        Optional :class:`~repro.sph.numeric.NumericProblem` running the
        real physics alongside the cost model.
    telemetry:
        Optional :class:`~repro.telemetry.TraceCollector`. When given,
        it is bound to the cluster, registered as the *innermost* hook
        (so its spans cover exactly the profiler's measured windows)
        and attached to the frequency controller for clock-change
        instants. When ``None`` — the default — no extra hooks are
        registered and the run is bit-for-bit identical to an
        un-traced one.
    resilience:
        Optional :class:`~repro.core.controller.ResilienceConfig`. When
        given, the frequency controller retries transient
        management-library errors and degrades failing ranks to their
        DVFS governor instead of propagating; when ``None`` — the
        default — vendor errors are fail-loud, exactly as before.
    faults:
        Optional :class:`~repro.faults.FaultInjector`. When given, it
        is bound to the cluster's clocks (and the telemetry collector,
        if any), installed over the vendor layers for the duration of
        :meth:`run`, and polled for job preemption once per step. A
        preempted run returns a partial result flagged ``preempted``
        rather than raising.
    monitor:
        Optional :class:`~repro.monitor.Monitor`. When given, it is
        bound to the cluster and the frequency controller (sharing the
        telemetry collector, if any); the device sampler starts after
        initialization — covering exactly the instrumented window — and
        stops when the run finishes. When ``None`` — the default — no
        monitoring happens and the run is unchanged.
    pace_scale:
        Host pacing of modelled device time. When positive, each step
        function's per-rank GPU busy time (virtual seconds) is slept on
        the host, scaled by this factor, through the cluster's comm
        backend: the ``local`` backend serializes the sleeps (eight
        ranks cost eight shares of wall clock, like the rest of the
        single-process fiction), the ``process`` backend overlaps them
        on real rank processes. ``0.0`` — the default — paces nothing
        and leaves wall-clock behaviour exactly as before. Pacing never
        touches virtual state: results are bit-identical at any scale.
    """

    def __init__(
        self,
        cluster,
        workload_name: str,
        n_particles_per_rank: float,
        policy: Optional[FrequencyPolicy] = None,
        numeric: Optional[NumericProblem] = None,
        mean_neighbors: float = REFERENCE_NEIGHBORS,
        telemetry=None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultInjector] = None,
        monitor=None,
        pace_scale: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.workload_name = workload_name
        self.functions: List[StepFunction] = propagator_for(workload_name)
        with_gravity = any(f.name == "Gravity" for f in self.functions)
        self.workloads: List[WorkloadModel] = [
            WorkloadModel(
                n_particles_per_rank, mean_neighbors, with_gravity
            )
            for _ in range(cluster.n_ranks)
        ]
        self.numeric = numeric
        if numeric is not None and numeric.n_ranks != cluster.n_ranks:
            raise ValueError("numeric problem rank count must match cluster")

        if policy is None:
            policy = baseline_policy(
                to_mhz(cluster.gpus[0].spec.default_clock_hz)
            )
        self.policy = policy
        self.controller = FrequencyController(
            cluster.gpus, policy, resilience=resilience
        )
        self.profiler: EnergyProfiler = make_profiler(cluster)
        self.hooks = HookRegistry()
        # Controller outside, profiler inside: clock-set latency before a
        # function is charged to the caller, not to the function itself.
        self.hooks.register(self.controller)
        # Policies that measure (e.g. OnlineTuningPolicy) are hooks too.
        if hasattr(policy, "before_function") and hasattr(
            policy, "after_function"
        ):
            self.hooks.register(policy)
        self.hooks.register(self.profiler)
        # Telemetry is opt-in and innermost: its spans open/close at the
        # same clock readings as the profiler's, making the
        # trace-vs-report reconciliation exact; a run without a
        # collector registers no extra hooks at all.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind_cluster(cluster)
            self.controller.telemetry = telemetry
            self.hooks.register(telemetry)
        self.faults = faults
        if faults is not None:
            faults.bind_cluster(cluster)
            if telemetry is not None and faults.telemetry is None:
                faults.telemetry = telemetry
        self.monitor = monitor
        if monitor is not None:
            if monitor.telemetry is None and telemetry is not None:
                monitor.telemetry = telemetry
            if not monitor.bound:
                monitor.bind_cluster(cluster, controller=self.controller)
            else:
                monitor.bind_controller(self.controller)
        if pace_scale < 0.0:
            raise ValueError("pace_scale must be >= 0")
        self.pace_scale = pace_scale
        self.dt_history: List[float] = []
        self._initialized = False

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Application setup: allocation + host-to-device data movement.

        Runs before the instrumented window — the paper's explanation
        for PMT reading less than Slurm (Fig. 3): GPUs idle here.
        """
        if self._initialized:
            return
        for rank, clock in enumerate(self.cluster.clocks):
            n_local = self.workloads[rank].n_particles
            clock.advance(INIT_BASE_S + INIT_PER_PARTICLE_S * n_local)
        self.cluster.comm.barrier()
        self.controller.apply_initial_mode()
        self._initialized = True

    def run(
        self,
        n_steps: int,
        *,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
        restore_from: Optional[str] = None,
        checkpoint_fingerprint: Optional[str] = None,
        on_step: Optional[Callable[[int], None]] = None,
    ) -> SimulationResult:
        """Execute the instrumented time-stepping loop up to ``n_steps``.

        With a fault injector attached, the vendor layers are wrapped
        for the duration of the run (including initialization — the
        initial clock pin can fail too), preemption is polled between
        steps, and the result carries the degradation outcome: which
        ranks fell back to DVFS, whether the run was preempted, and how
        many faults were delivered.

        Crash tolerance: with ``checkpoint_every > 0`` and a
        ``checkpoint_path``, a full state snapshot is written atomically
        every that many completed steps (and at a preemption boundary).
        With ``restore_from`` naming an existing checkpoint, the run
        resumes from its recorded step instead of step 0 — the loop
        executes only the remaining steps, and the final result is
        bit-identical to an uninterrupted run. ``n_steps`` is always the
        *total* step count. ``checkpoint_fingerprint`` (e.g. a campaign
        run key) guards against restoring a checkpoint from a different
        configuration. ``on_step`` is invoked with the completed-step
        count after every step (worker-lane heartbeats hang off it).
        """
        if n_steps < 1:
            raise ValueError("need at least one step")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        injected = self.faults
        resumed_from = 0
        checkpoints_written = 0
        if restore_from is not None:
            state = read_checkpoint(restore_from)
            self._check_compatible(state, checkpoint_fingerprint)
            resumed_from = self.restore(state)
            if resumed_from > n_steps:
                raise CheckpointError(
                    f"checkpoint is at step {resumed_from}, beyond the "
                    f"requested {n_steps}"
                )
        steps_done = resumed_from
        preempted = False
        try:
            return self._run_loop(
                n_steps,
                steps_done,
                preempted,
                resumed_from,
                checkpoints_written,
                injected,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                checkpoint_fingerprint=checkpoint_fingerprint,
                on_step=on_step,
            )
        finally:
            self._flush_trace_shards()
            # Rank worker processes never outlive the run (they respawn
            # lazily if the same simulation runs again).
            self.cluster.comm.backend.shutdown()

    def _flush_trace_shards(self) -> None:
        """Persist per-process trace shards while workers are alive.

        Runs before the comm backend shuts down so that, under the
        ``process`` backend, each rank worker writes its own shard
        over its duplex pipe. Observability must never take down a
        run, so failures are swallowed (the run's numbers stand; only
        the trace artifact is lost).
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        if getattr(telemetry, "context", None) is None:
            return
        if getattr(telemetry, "shard_dir", None) is None:
            return
        try:
            telemetry.flush_shards(backend=self.cluster.comm.backend)
        except Exception:
            pass

    def shutdown(self) -> None:
        """Tear down the comm backend's rank workers (idempotent).

        Needed by callers that drive :meth:`_run_step` directly instead
        of going through :meth:`run` (which tears down on exit).
        """
        self.cluster.comm.backend.shutdown()

    def _run_loop(
        self,
        n_steps: int,
        steps_done: int,
        preempted: bool,
        resumed_from: int,
        checkpoints_written: int,
        injected,
        *,
        checkpoint_every: int,
        checkpoint_path: Optional[str],
        checkpoint_fingerprint: Optional[str],
        on_step: Optional[Callable[[int], None]],
    ) -> SimulationResult:
        with injected if injected is not None else nullcontext():
            if resumed_from == 0:
                self.initialize()
                # The sampler opens with the instrumented window, so the
                # setup phase (idle GPUs, one long clock advance) does
                # not masquerade as a sampling gap.
                if self.monitor is not None and not self.monitor.running:
                    self.monitor.start()
                self.profiler.open_window()
            elif self.monitor is not None and not self.monitor.running:
                # The restored profiler window is already open; the
                # monitor restarts fresh (sampling is observability,
                # not result state).
                self.monitor.start()
            try:
                while steps_done < n_steps:
                    if injected is not None:
                        injected.check_preemption(steps_done)
                    self._run_step()
                    steps_done += 1
                    if on_step is not None:
                        on_step(steps_done)
                    if (
                        checkpoint_every > 0
                        and steps_done % checkpoint_every == 0
                    ):
                        self.save_checkpoint(
                            checkpoint_path,
                            n_steps=n_steps,
                            steps_done=steps_done,
                            fingerprint=checkpoint_fingerprint,
                        )
                        checkpoints_written += 1
            except JobPreempted as exc:
                preempted = True
                if checkpoint_path is not None:
                    # check_preemption raises between steps, so the
                    # state is at a boundary; an async (signal-raised)
                    # preemption mid-step is refused by the profiler
                    # guard and the last periodic checkpoint stands.
                    try:
                        self.save_checkpoint(
                            checkpoint_path,
                            n_steps=n_steps,
                            steps_done=steps_done,
                            fingerprint=checkpoint_fingerprint,
                        )
                        checkpoints_written += 1
                    except (RuntimeError, CheckpointError):
                        pass
                if self.telemetry is not None:
                    self.telemetry.emit_instant(
                        "job-preempted",
                        0,
                        track="faults",
                        steps_done=exc.steps_done,
                    )
            self.profiler.close_window()
            if self.monitor is not None:
                self.monitor.stop()
        report = self.profiler.gather(self.cluster.comm)
        for degradation in self.controller.degradations:
            report.mark_degraded(degradation.rank, degradation.reason)
        return SimulationResult(
            report=report,
            elapsed_s=report.max_window_time_s(),
            gpu_energy_j=report.total_window_gpu_j(),
            steps=steps_done,
            clock_set_calls=self.controller.clock_set_calls,
            dt_history=list(self.dt_history),
            clock_set_skipped=self.controller.clock_set_skipped,
            degraded_ranks=self.controller.degraded_ranks,
            preempted=preempted,
            faults_injected=(
                len(injected.records) if injected is not None else 0
            ),
            retries=self.controller.retries_performed,
            resumed_from_step=resumed_from,
            checkpoints_written=checkpoints_written,
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def state_dict(
        self,
        n_steps: int,
        steps_done: int,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, object]:
        """Complete simulation state at a step boundary.

        Raises :class:`RuntimeError` when called mid-step (open
        profiler measurements) — a checkpoint must never capture a
        half-executed step.
        """
        backend = self.cluster.comm.backend
        if backend.parallel and getattr(backend, "started", False):
            # Per-rank state is gathered through the backend: a snapshot
            # is refused while any rank worker is dead (RankDied), so a
            # checkpoint can never capture a half-crashed team.
            backend.check_alive()
        state: Dict[str, object] = {
            "comm_backend": backend.name,
            "workload": self.workload_name,
            "policy": self.policy.name,
            "n_steps": int(n_steps),
            "steps_done": int(steps_done),
            "fingerprint": fingerprint,
            "initialized": self._initialized,
            "cluster": self.cluster.state_dict(),
            "profiler": self.profiler.state_dict(),
            "controller": self.controller.state_dict(),
            "policy_state": self.policy.state_dict(),
            "workloads": [
                {
                    "n_particles": w.n_particles,
                    "mean_neighbors": w.mean_neighbors,
                    "with_gravity": w.with_gravity,
                }
                for w in self.workloads
            ],
            "dt_history": list(self.dt_history),
            "numeric": (
                None if self.numeric is None else self.numeric.state_dict()
            ),
            "faults": (
                None if self.faults is None else self.faults.state_dict()
            ),
            "telemetry": (
                self.telemetry.state_dict()
                if self.telemetry is not None
                and hasattr(self.telemetry, "state_dict")
                else None
            ),
        }
        return state

    def save_checkpoint(
        self,
        path: str,
        n_steps: int,
        steps_done: int,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Atomically write a checkpoint of the current state."""
        write_checkpoint(
            path,
            self.state_dict(
                n_steps, steps_done, fingerprint=fingerprint
            ),
        )

    def _check_compatible(
        self, state: Dict[str, object], fingerprint: Optional[str]
    ) -> None:
        if state.get("workload") != self.workload_name:
            raise CheckpointError(
                f"checkpoint is for workload {state.get('workload')!r}, "
                f"not {self.workload_name!r}"
            )
        if state.get("policy") != self.policy.name:
            raise CheckpointError(
                f"checkpoint is for policy {state.get('policy')!r}, "
                f"not {self.policy.name!r}"
            )
        saved = state.get("fingerprint")
        if fingerprint is not None and saved not in (None, fingerprint):
            raise CheckpointError(
                f"checkpoint fingerprint {saved!r} does not match "
                f"{fingerprint!r}"
            )
        if (self.numeric is None) != (state.get("numeric") is None):
            raise CheckpointError(
                "checkpoint and simulation disagree on numeric mode"
            )
        if (self.faults is None) != (state.get("faults") is None):
            raise CheckpointError(
                "checkpoint and simulation disagree on fault injection"
            )

    def restore(self, state: Dict[str, object]) -> int:
        """Restore a :meth:`state_dict`; returns the completed-step count.

        The restored simulation is mid-window: :meth:`run` skips
        ``initialize``/``open_window`` and continues the loop from the
        returned step.
        """
        self.cluster.restore_state(state["cluster"])
        self.profiler.restore_state(state["profiler"])
        self.controller.restore_state(state["controller"])
        self.policy.restore_state(state["policy_state"])
        self.workloads = [
            WorkloadModel(
                w["n_particles"], w["mean_neighbors"], w["with_gravity"]
            )
            for w in state["workloads"]
        ]
        self.dt_history = [float(dt) for dt in state["dt_history"]]
        if self.numeric is not None:
            self.numeric.restore_state(state["numeric"])
        if self.faults is not None:
            self.faults.restore_state(state["faults"])
        if (
            self.telemetry is not None
            and hasattr(self.telemetry, "restore_state")
            and state.get("telemetry") is not None
        ):
            self.telemetry.restore_state(state["telemetry"])
        self._initialized = bool(state["initialized"])
        return int(state["steps_done"])

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------

    def _run_step(self) -> None:
        for fn in self.functions:
            self._run_function(fn)
        self.profiler.mark_step()
        if self.telemetry is not None:
            self.telemetry.mark_step()

    def _run_function(self, fn: StepFunction) -> None:
        comm = self.cluster.comm
        n_ranks = self.cluster.n_ranks
        for rank in range(n_ranks):
            self.hooks.fire_before(fn.name, rank)

        # Per-rank GPU work (each rank advances its own clock).
        pace = self.pace_scale > 0.0
        busy: Optional[List[float]] = [] if pace else None
        for rank in range(n_ranks):
            gpu = self.cluster.gpu_of_rank(rank)
            clock = self.cluster.clocks[rank]
            before = clock.now
            for launch in self.workloads[rank].launches_for(fn.name):
                gpu.execute(launch)
            if pace:
                busy.append(clock.now - before)

        # Pace the modelled busy time on the host: serial under the
        # local backend, overlapped across rank processes under the
        # process backend. Purely wall-clock — no virtual state moves.
        if pace:
            comm.backend.pace([b * self.pace_scale for b in busy])

        # Real numerics (no simulated-time cost: the GPU model carries it).
        if self.numeric is not None:
            self._dispatch_numeric(fn.name)

        # Trailing collective, inside the function's measured window.
        if fn.collective == "allreduce":
            self._run_allreduce(fn)
        elif fn.collective == "exchange":
            self._run_exchange(fn)

        # Host-side tail (physical-time computation, bookkeeping): the
        # GPUs idle here, letting the DVFS governor clock down (Fig. 9).
        # CPU-frequency scaling (--cpu-freq) slows exactly these phases.
        if fn.host_overhead_s > 0.0:
            for rank, clock in enumerate(self.cluster.clocks):
                slowdown = self.cluster.cpu_slowdown_factor(rank)
                clock.advance(fn.host_overhead_s * slowdown)

        for rank in range(n_ranks):
            self.hooks.fire_after(fn.name, rank)

    def _dispatch_numeric(self, name: str) -> None:
        problem = self.numeric
        assert problem is not None
        if name == "DomainDecompAndSync":
            problem.domain_decomp_and_sync()
            self._refresh_workloads(particles=True)
        elif name == "FindNeighbors":
            problem.find_neighbors()
            self._refresh_workloads(neighbors=True)
        elif name == "XMass":
            problem.xmass()
        elif name == "NormalizationGradh":
            problem.normalization_gradh()
        elif name == "EquationOfState":
            problem.equation_of_state()
        elif name == "IADVelocityDivCurl":
            problem.iad_velocity_div_curl()
        elif name == "Gravity":
            problem.gravity_step()
        elif name == "MomentumEnergy":
            problem.momentum_energy()
        elif name == "Timestep":
            pass  # handled by the allreduce below
        elif name == "UpdateQuantities":
            problem.update_quantities()
        else:  # pragma: no cover - propagator and model must agree
            raise KeyError(f"no numeric implementation for {name!r}")

    def _refresh_workloads(
        self, particles: bool = False, neighbors: bool = False
    ) -> None:
        problem = self.numeric
        assert problem is not None
        if particles:
            counts = problem.local_particle_counts()
            for rank in range(self.cluster.n_ranks):
                if counts[rank] > 0:
                    self.workloads[rank] = self.workloads[rank].with_particles(
                        float(counts[rank])
                    )
        if neighbors:
            means = problem.mean_neighbor_counts()
            for rank in range(self.cluster.n_ranks):
                if means[rank] > 0:
                    self.workloads[rank] = self.workloads[rank].with_neighbors(
                        float(means[rank])
                    )

    def _run_allreduce(self, fn: StepFunction) -> None:
        comm = self.cluster.comm
        if self.numeric is not None and fn.name == "Timestep":
            dts = self.numeric.local_timesteps()
            dt = comm.allreduce(dts, op=min)
            self.numeric.set_global_dt(dt)
            self.dt_history.append(dt)
        else:
            payload = [fn.collective_bytes_per_rank / 8.0] * comm.size
            comm.allreduce(payload, op=min)
            self.dt_history.append(0.0)

    def _run_exchange(self, fn: StepFunction) -> None:
        comm = self.cluster.comm
        n_ranks = comm.size
        if n_ranks == 1:
            return
        if self.numeric is not None and self.numeric.exchange_bytes is not None:
            matrix = self.numeric.exchange_bytes
        else:
            matrix = self._model_exchange_bytes()
        for src in range(n_ranks):
            for dst in range(n_ranks):
                if src == dst:
                    continue
                nbytes = float(matrix[src][dst])
                if nbytes > 0.0:
                    comm.sendrecv(src, dst, nbytes)
        comm.barrier()

    def _model_exchange_bytes(self) -> np.ndarray:
        """Surface-scaling halo estimate for model-mode runs."""
        n_ranks = self.cluster.n_ranks
        matrix = np.zeros((n_ranks, n_ranks))
        for src in range(n_ranks):
            n_local = self.workloads[src].n_particles
            halo = 3.0 * n_local ** (2.0 / 3.0)
            partners = [
                p
                for p in (src - 1, src + 1, src - 2, src + 2)
                if 0 <= p < n_ranks
            ]
            for dst in partners:
                matrix[src][dst] = halo * MODEL_HALO_BYTES / max(
                    len(partners), 1
                )
        return matrix


def run_instrumented(
    cluster,
    workload_name: str,
    n_particles_per_rank: float,
    n_steps: int,
    policy: Optional[FrequencyPolicy] = None,
    numeric: Optional[NumericProblem] = None,
    mean_neighbors: float = REFERENCE_NEIGHBORS,
    telemetry=None,
    resilience: Optional[ResilienceConfig] = None,
    faults: Optional[FaultInjector] = None,
    monitor=None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
    restore_from: Optional[str] = None,
    checkpoint_fingerprint: Optional[str] = None,
    on_step: Optional[Callable[[int], None]] = None,
    pace_scale: float = 0.0,
) -> SimulationResult:
    """Convenience wrapper: build, initialize and run a simulation."""
    sim = Simulation(
        cluster,
        workload_name,
        n_particles_per_rank,
        policy=policy,
        numeric=numeric,
        mean_neighbors=mean_neighbors,
        telemetry=telemetry,
        resilience=resilience,
        faults=faults,
        monitor=monitor,
        pace_scale=pace_scale,
    )
    return sim.run(
        n_steps,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        restore_from=restore_from,
        checkpoint_fingerprint=checkpoint_fingerprint,
        on_step=on_step,
    )
