"""Per-step pair geometry cache (StepGeometry).

Every pair-interaction kernel of the step loop — XMass,
NormalizationGradh, IADVelocityDivCurl, MomentumEnergy and the
signal-velocity sweep of Timestep — consumes the same per-pair
quantities: the directed index expansion ``(i_idx, j_idx)`` of the CSR
neighbor list, the minimum-image displacements ``(dx, dy, dz)`` and the
distances ``r``. Historically each kernel recomputed them from scratch
(four ``np.repeat`` expansions and ``sqrt`` sweeps per step, plus two
``symmetric_pairs`` closure scans); :class:`StepGeometry` computes them
**once** per step, right after FindNeighbors, and hands read-only views
to every kernel.

The cache also supports Verlet-skin neighbor reuse: built from a *wide*
list searched at ``(support_radius + skin) * h``, it masks the pairs
back down to the true ``r <= support_radius * h_i`` support each step,
so the expensive tree search can be amortized over several steps while
the physics sees exactly the pairs a fresh search would have produced.

Scatter reductions over the pair arrays go through
:func:`scatter_sum` (``np.bincount``) rather than ``np.add.at``:
``ufunc.at`` is unbuffered and typically 5-20x slower than the
histogram path for float64 weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .neighbors import NeighborList, mirror_missing
from .particles import ParticleSet


def scatter_sum(idx: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
    """Sum ``weights`` into ``n`` bins keyed by ``idx``.

    Drop-in replacement for ``np.add.at(out, idx, weights)`` on a fresh
    zero array, built on ``np.bincount`` (buffered, vectorized).
    """
    return np.bincount(idx, weights=weights, minlength=n)


@dataclass(frozen=True)
class PairTable:
    """Directed pair arrays with precomputed displacement geometry."""

    i_idx: np.ndarray
    j_idx: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    dz: np.ndarray
    r: np.ndarray

    @property
    def m(self) -> int:
        """Number of directed pairs."""
        return len(self.i_idx)


class StepGeometry:
    """Shared per-step pair geometry for all pair-interaction kernels.

    Attributes
    ----------
    particles:
        The particle set the geometry was computed from.
    nlist:
        True-support CSR neighbor list (masked when built from a wide
        Verlet list, the input list unchanged otherwise). This is what
        smoothing-length adaptation and workload feedback must use.
    pairs:
        Gather-side :class:`PairTable`, CSR-aligned with ``nlist``.
    box_size:
        Periodic box edge, or ``None`` for open boundaries.
    """

    def __init__(
        self,
        particles: ParticleSet,
        nlist: NeighborList,
        pairs: PairTable,
        box_size: Optional[float] = None,
        sym_missing: Optional[np.ndarray] = None,
    ) -> None:
        self.particles = particles
        self.nlist = nlist
        self.pairs = pairs
        self.box_size = box_size
        self._sym_missing = sym_missing
        self._sym: Optional[PairTable] = None
        self._und: Optional[PairTable] = None
        self._sym_order: Optional[np.ndarray] = None
        self._sym_has: Optional[np.ndarray] = None
        self._sym_starts: Optional[np.ndarray] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        particles: ParticleSet,
        nlist: NeighborList,
        box_size: Optional[float] = None,
        support_radius: Optional[float] = None,
        mirror_absent: Optional[np.ndarray] = None,
    ) -> "StepGeometry":
        """Compute the pair geometry from a CSR neighbor list.

        With ``support_radius`` given, ``nlist`` is treated as a *wide*
        (Verlet-skin) list and the pairs are masked back to the true
        ``r <= support_radius * h_i`` support; the returned geometry
        carries a correspondingly masked ``nlist``. Without it the list
        is taken at face value (the classic one-search-per-step path).

        ``mirror_absent`` is the per-pair mask of ``nlist`` pairs whose
        mirror is absent from ``nlist`` (see
        :func:`repro.sph.neighbors.mirror_missing`). It only depends on
        the pair *set*, so callers reusing a wide Verlet list can
        compute it once per tree rebuild and the per-step symmetric
        closure becomes pure masking instead of an O(m log m) scan.
        """
        n = nlist.n
        i_idx = np.repeat(np.arange(n, dtype=np.int64), nlist.counts())
        j_idx = np.asarray(nlist.neighbors, dtype=np.int64)
        dx = particles.x[i_idx] - particles.x[j_idx]
        dy = particles.y[i_idx] - particles.y[j_idx]
        dz = particles.z[i_idx] - particles.z[j_idx]
        if box_size is not None:
            dx -= box_size * np.round(dx / box_size)
            dy -= box_size * np.round(dy / box_size)
            dz -= box_size * np.round(dz / box_size)
        r2 = dx * dx + dy * dy + dz * dz

        sym_missing = mirror_absent
        if support_radius is not None:
            # Mask wide-list pairs back to the true kernel support
            # (squared comparison: the sqrt only runs on kept pairs).
            # The closed bound mirrors cKDTree.query_ball_point
            # semantics, and W(support * h) = 0 anyway.
            keep = r2 <= (support_radius * particles.h[i_idx]) ** 2
            if not np.all(keep):
                i_idx, j_idx = i_idx[keep], j_idx[keep]
                dx, dy, dz, r2 = dx[keep], dy[keep], dz[keep], r2[keep]
                if mirror_absent is not None:
                    sym_missing = mirror_absent[keep]
            if sym_missing is not None:
                # The mirror of a kept pair (i, j) survives the mask
                # exactly when it was in the wide list and j still has
                # i inside its own support (r is symmetric).
                sym_missing = sym_missing | (
                    r2 > (support_radius * particles.h[j_idx]) ** 2
                )
            counts = np.bincount(i_idx, minlength=n).astype(np.int64)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            nlist = NeighborList(neighbors=j_idx, offsets=offsets)
        r = np.maximum(np.sqrt(r2), 1e-300)

        pairs = PairTable(i_idx=i_idx, j_idx=j_idx, dx=dx, dy=dy, dz=dz, r=r)
        return cls(
            particles, nlist, pairs, box_size=box_size,
            sym_missing=sym_missing,
        )

    # -- convenience views --------------------------------------------------

    @property
    def n(self) -> int:
        return self.nlist.n

    @property
    def i_idx(self) -> np.ndarray:
        return self.pairs.i_idx

    @property
    def j_idx(self) -> np.ndarray:
        return self.pairs.j_idx

    @property
    def dx(self) -> np.ndarray:
        return self.pairs.dx

    @property
    def dy(self) -> np.ndarray:
        return self.pairs.dy

    @property
    def dz(self) -> np.ndarray:
        return self.pairs.dz

    @property
    def r(self) -> np.ndarray:
        return self.pairs.r

    # -- symmetric closure --------------------------------------------------

    def symmetric(self) -> PairTable:
        """Pair table closed under reversal (cached).

        With adaptive smoothing lengths the gather lists are
        asymmetric; momentum-conserving sums need every pair in both
        directions. The closure (a lexsort + binary-search mirror test,
        see :func:`repro.sph.neighbors.mirror_missing`) runs at most
        once per neighbor-geometry build — MomentumEnergy and the
        Timestep signal-velocity sweep share the result, where they
        previously each re-derived it every call.
        """
        if self._sym is None:
            p = self.pairs
            if self._sym_missing is not None:
                missing = self._sym_missing
            else:
                missing = mirror_missing(p.i_idx, p.j_idx)
            if np.any(missing):
                self._sym = PairTable(
                    i_idx=np.concatenate([p.i_idx, p.j_idx[missing]]),
                    j_idx=np.concatenate([p.j_idx, p.i_idx[missing]]),
                    dx=np.concatenate([p.dx, -p.dx[missing]]),
                    dy=np.concatenate([p.dy, -p.dy[missing]]),
                    dz=np.concatenate([p.dz, -p.dz[missing]]),
                    r=np.concatenate([p.r, p.r[missing]]),
                )
            else:
                self._sym = p
        return self._sym

    def undirected(self) -> PairTable:
        """Each interacting pair exactly once, with ``i < j`` (cached).

        The symmetric closure contains every undirected pair in both
        directions, so masking to ``i < j`` enumerates each interaction
        once. Pair-symmetric kernels (MomentumEnergy's force
        coefficient is invariant under i <-> j) can evaluate on this
        half-sized table and scatter to both endpoints, halving the
        gather and arithmetic volume of the heaviest kernel.
        """
        if self._und is None:
            sym = self.symmetric()
            keep = sym.i_idx < sym.j_idx
            self._und = PairTable(
                i_idx=sym.i_idx[keep],
                j_idx=sym.j_idx[keep],
                dx=sym.dx[keep],
                dy=sym.dy[keep],
                dz=sym.dz[keep],
                r=sym.r[keep],
            )
        return self._und

    def sym_scatter_max(
        self, values: np.ndarray, init: np.ndarray
    ) -> np.ndarray:
        """Per-particle maximum of per-pair ``values`` over the
        symmetric closure, floored at ``init`` (segment-sorted
        ``np.maximum.reduceat`` — replaces ``np.maximum.at``)."""
        if self._sym_order is None:
            sym = self.symmetric()
            order = np.argsort(sym.i_idx, kind="stable")
            sorted_i = sym.i_idx[order]
            grid = np.arange(self.n, dtype=np.int64)
            starts = np.searchsorted(sorted_i, grid, side="left")
            ends = np.searchsorted(sorted_i, grid, side="right")
            self._sym_order = order
            self._sym_has = ends > starts
            self._sym_starts = starts[self._sym_has]
        out = np.array(init, dtype=np.float64, copy=True)
        if self._sym_starts.size:
            seg_max = np.maximum.reduceat(
                values[self._sym_order], self._sym_starts
            )
            out[self._sym_has] = np.maximum(out[self._sym_has], seg_max)
        return out
