"""Numeric backend: real SPH physics behind the instrumented loop.

At laptop scale (10^3-10^5 particles) the simulation runs the *actual*
numerics — neighbor search, XMass/density/IAD/momentum sums, gravity,
time integration — on global NumPy arrays, while the per-rank GPU cost
model is fed with the true local particle and neighbor counts from the
SFC domain decomposition. Paper-scale runs (10^8+ particles per GPU)
use the pure workload model instead; the instrumentation layer cannot
tell the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .cornerstone import (
    Box,
    discover_halos,
    morton_encode,
    decompose,
    plan_exchange,
)
from .eos import IdealGasEOS
from .geometry import StepGeometry
from .kernels_math import SmoothingKernel, default_kernel
from .neighbors import NeighborList, find_neighbors, mirror_missing
from .particles import ParticleSet
from .physics import (
    ArtificialViscosity,
    GravityConfig,
    TimestepControl,
    compute_density_gradh,
    compute_gravity,
    compute_iad_divv_curlv,
    compute_momentum_energy,
    compute_xmass,
    local_timestep,
    update_quantities,
)
from .physics.positions import IntegrationConfig

#: Wire bytes per exchanged particle (9 primary float64 fields).
EXCHANGE_BYTES_PER_PARTICLE = 9 * 8

#: Wire bytes per halo particle (position, h, m, rho, p, v, u...).
HALO_BYTES_PER_PARTICLE = 11 * 8


@dataclass
class NumericProblem:
    """Global-array physics state shared by all simulated ranks.

    ``skin`` enables Verlet-skin neighbor reuse: the tree search runs
    at radius ``(support_radius + skin) * h`` and the resulting wide
    list is kept across steps until accumulated particle motion (or
    smoothing-length growth) could let an unseen pair enter the true
    kernel support; each step the shared :class:`StepGeometry` masks
    the wide list back to ``r <= support_radius * h_i``, so the physics
    sees exactly the pairs a fresh search would produce. ``skin`` is
    dimensionless (units of ``h``); ``0.0`` — the default — rebuilds
    every step, ``0.1`` is a sane choice for production runs.
    """

    particles: ParticleSet
    n_ranks: int
    kernel: SmoothingKernel = field(default_factory=default_kernel)
    eos: IdealGasEOS = field(default_factory=IdealGasEOS)
    box_size: Optional[float] = None
    gravity: Optional[GravityConfig] = None
    av: ArtificialViscosity = field(default_factory=ArtificialViscosity)
    timestep: TimestepControl = field(default_factory=TimestepControl)
    integration: IntegrationConfig = field(default_factory=IntegrationConfig)
    driver: Optional[object] = None  # TurbulenceDriver-compatible
    #: Verlet-skin width in units of h (0 = fresh search every step).
    skin: float = 0.0

    # -- per-step state -------------------------------------------------------
    nlist: Optional[NeighborList] = None
    #: Shared pair geometry for this step's kernels (set by find_neighbors).
    geometry: Optional[StepGeometry] = None
    rank_of_particle: Optional[np.ndarray] = None
    dt: float = 0.0
    previous_dt: Optional[float] = None
    step_index: int = 0
    #: Bytes to exchange between rank pairs this step (n_ranks^2).
    exchange_bytes: Optional[np.ndarray] = None
    #: Tree searches performed / wide lists reused (perf diagnostics).
    neighbor_rebuilds: int = 0
    neighbor_reuses: int = 0
    _gravity_acc: Optional[np.ndarray] = None
    _previous_ranks: Optional[np.ndarray] = None
    _wide_nlist: Optional[NeighborList] = None
    _wide_mirror_absent: Optional[np.ndarray] = None
    _rebuild_x: Optional[np.ndarray] = None
    _rebuild_y: Optional[np.ndarray] = None
    _rebuild_z: Optional[np.ndarray] = None
    _rebuild_h: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Step functions (called by the Simulation in loop order)
    # ------------------------------------------------------------------

    def domain_decomp_and_sync(self) -> None:
        """SFC decomposition, migration plan, halo discovery."""
        p = self.particles
        if self.box_size is not None:
            box = Box.cube(0.0, self.box_size)
        else:
            box = Box.bounding(p.x, p.y, p.z)
        keys = morton_encode(p.x, p.y, p.z, box)
        order = np.argsort(keys, kind="stable")
        assignment = decompose(keys[order], self.n_ranks)
        new_ranks = assignment.rank_of_keys(keys)

        migration_bytes = np.zeros((self.n_ranks, self.n_ranks))
        if self._previous_ranks is not None:
            plan = plan_exchange(
                self._previous_ranks, new_ranks, self.n_ranks
            )
            migration_bytes = plan.bytes_per_pair(EXCHANGE_BYTES_PER_PARTICLE)
        self._previous_ranks = new_ranks
        self.rank_of_particle = new_ranks

        if self.n_ranks > 1:
            halos = discover_halos(
                p.positions(),
                p.h,
                new_ranks,
                self.n_ranks,
                support_radius=self.kernel.support_radius,
                box_size=self.box_size,
            )
            halo_bytes = (
                halos.send_counts.astype(np.float64) * HALO_BYTES_PER_PARTICLE
            )
        else:
            halo_bytes = np.zeros((1, 1))
        self.exchange_bytes = migration_bytes + halo_bytes

    def find_neighbors(self) -> None:
        """Refresh the neighbor list and the shared step geometry.

        With a positive ``skin`` the cKDTree search is amortized: a
        wide list at ``(support + skin) * h`` is rebuilt only when the
        conservative Verlet criterion (see :meth:`_needs_rebuild`) can
        no longer guarantee it covers the true support, and every step
        the geometry masks it back to ``r <= support * h_i``.
        """
        p = self.particles
        support = self.kernel.support_radius
        if self.skin > 0.0:
            if self._wide_nlist is None or self._needs_rebuild():
                wide = find_neighbors(
                    p,
                    support_radius=support + self.skin,
                    box_size=self.box_size,
                )
                self._wide_nlist = wide
                # The mirror-membership scan depends only on the pair
                # set, so it too is amortized over the list's lifetime.
                wide_i = np.repeat(
                    np.arange(wide.n, dtype=np.int64), wide.counts()
                )
                self._wide_mirror_absent = mirror_missing(
                    wide_i, wide.neighbors
                )
                self._rebuild_x = np.copy(p.x)
                self._rebuild_y = np.copy(p.y)
                self._rebuild_z = np.copy(p.z)
                self._rebuild_h = np.copy(p.h)
                self.neighbor_rebuilds += 1
            else:
                self.neighbor_reuses += 1
            geom = StepGeometry.build(
                p,
                self._wide_nlist,
                box_size=self.box_size,
                support_radius=support,
                mirror_absent=self._wide_mirror_absent,
            )
        else:
            self._wide_nlist = find_neighbors(
                p, support_radius=support, box_size=self.box_size
            )
            self.neighbor_rebuilds += 1
            geom = StepGeometry.build(
                p, self._wide_nlist, box_size=self.box_size
            )
        self.geometry = geom
        self.nlist = geom.nlist

    def _needs_rebuild(self) -> bool:
        """Conservative Verlet-skin invalidation test.

        A pair (i, j) inside the true support now was inside the wide
        search radius at rebuild time as long as

            2 max(0, h_i - h_i^reb) + |dx_i| + |dx_j|
                <= skin * h_i^reb,

        so the wide list is provably complete while

            2 max|dx| + 2 max(0, dh) <= skin * min(h^reb).
        """
        p = self.particles
        dx = p.x - self._rebuild_x
        dy = p.y - self._rebuild_y
        dz = p.z - self._rebuild_z
        if self.box_size is not None:
            dx -= self.box_size * np.round(dx / self.box_size)
            dy -= self.box_size * np.round(dy / self.box_size)
            dz -= self.box_size * np.round(dz / self.box_size)
        max_disp = float(np.sqrt(np.max(dx * dx + dy * dy + dz * dz)))
        max_h_growth = float(np.max(p.h - self._rebuild_h, initial=0.0))
        budget = self.skin * float(np.min(self._rebuild_h))
        return 2.0 * max_disp + 2.0 * max(max_h_growth, 0.0) > budget

    def xmass(self) -> None:
        self._require_nlist()
        compute_xmass(
            self.particles,
            self.nlist,
            self.kernel,
            self.box_size,
            geometry=self.geometry,
        )

    def normalization_gradh(self) -> None:
        self._require_nlist()
        compute_density_gradh(
            self.particles,
            self.nlist,
            self.kernel,
            self.box_size,
            geometry=self.geometry,
        )

    def equation_of_state(self) -> None:
        self.eos.apply(self.particles)

    def iad_velocity_div_curl(self) -> None:
        self._require_nlist()
        compute_iad_divv_curlv(
            self.particles,
            self.nlist,
            self.kernel,
            self.box_size,
            geometry=self.geometry,
        )

    def gravity_step(self) -> None:
        if self.gravity is None:
            raise RuntimeError("gravity is not enabled for this problem")
        self._gravity_acc = compute_gravity(self.particles, self.gravity)

    def momentum_energy(self) -> None:
        self._require_nlist()
        ext = None
        if self._gravity_acc is not None:
            ext = self._gravity_acc
        if self.driver is not None:
            drive = self.driver.acceleration(self.particles)
            ext = drive if ext is None else ext + drive
        compute_momentum_energy(
            self.particles,
            self.nlist,
            self.kernel,
            av=self.av,
            box_size=self.box_size,
            external_ax=None if ext is None else ext[:, 0],
            external_ay=None if ext is None else ext[:, 1],
            external_az=None if ext is None else ext[:, 2],
            geometry=self.geometry,
        )

    def local_timesteps(self) -> List[float]:
        """Per-rank local dt values (before the global min-reduction)."""
        self._require_nlist()
        dt_global = local_timestep(
            self.particles,
            self.nlist,
            control=self.timestep,
            previous_dt=self.previous_dt,
            box_size=self.box_size,
            geometry=self.geometry,
        )
        # All ranks see (nearly) the same particles here because the
        # numerics are global; per-rank jitter is not modelled.
        return [dt_global] * self.n_ranks

    def set_global_dt(self, dt: float) -> None:
        self.dt = dt

    def update_quantities(self) -> None:
        if self.dt <= 0:
            raise RuntimeError("global dt has not been reduced yet")
        update_quantities(
            self.particles,
            self.dt,
            nlist=self.nlist,
            config=self.integration,
            box_size=self.box_size,
        )
        self.previous_dt = self.dt
        self.step_index += 1
        self._gravity_acc = None

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete inter-step physics state (raw arrays allowed).

        The wide Verlet-skin neighbor list is serialized *in full*
        rather than replaced by a rebuild marker: a fresh tree search
        after restore could order neighbors differently, changing
        floating-point summation order and breaking bit-exactness at
        ``skin > 0``. Per-step scratch (``nlist``/``geometry``/
        ``_gravity_acc``) is rebuilt by the next ``find_neighbors``
        call, so it is not stored.
        """
        wide = self._wide_nlist
        return {
            "particles": self.particles.state_dict(),
            "rank_of_particle": self.rank_of_particle,
            "dt": self.dt,
            "previous_dt": self.previous_dt,
            "step_index": self.step_index,
            "exchange_bytes": self.exchange_bytes,
            "neighbor_rebuilds": self.neighbor_rebuilds,
            "neighbor_reuses": self.neighbor_reuses,
            "previous_ranks": self._previous_ranks,
            "wide_neighbors": None if wide is None else wide.neighbors,
            "wide_offsets": None if wide is None else wide.offsets,
            "wide_mirror_absent": self._wide_mirror_absent,
            "rebuild_x": self._rebuild_x,
            "rebuild_y": self._rebuild_y,
            "rebuild_z": self._rebuild_z,
            "rebuild_h": self._rebuild_h,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.particles = ParticleSet.from_state(state["particles"])
        self.rank_of_particle = state["rank_of_particle"]
        self.dt = float(state["dt"])
        previous_dt = state["previous_dt"]
        self.previous_dt = (
            None if previous_dt is None else float(previous_dt)
        )
        self.step_index = int(state["step_index"])
        self.exchange_bytes = state["exchange_bytes"]
        self.neighbor_rebuilds = int(state["neighbor_rebuilds"])
        self.neighbor_reuses = int(state["neighbor_reuses"])
        self._previous_ranks = state["previous_ranks"]
        if state["wide_neighbors"] is None:
            self._wide_nlist = None
        else:
            self._wide_nlist = NeighborList(
                neighbors=state["wide_neighbors"],
                offsets=state["wide_offsets"],
            )
        self._wide_mirror_absent = state["wide_mirror_absent"]
        self._rebuild_x = state["rebuild_x"]
        self._rebuild_y = state["rebuild_y"]
        self._rebuild_z = state["rebuild_z"]
        self._rebuild_h = state["rebuild_h"]
        self.nlist = None
        self.geometry = None
        self._gravity_acc = None

    # ------------------------------------------------------------------
    # Feedback to the workload model
    # ------------------------------------------------------------------

    def local_particle_counts(self) -> np.ndarray:
        """Particles per rank under the current decomposition."""
        if self.rank_of_particle is None:
            n = self.particles.n
            base = np.full(self.n_ranks, n // self.n_ranks, dtype=np.int64)
            base[: n % self.n_ranks] += 1
            return base
        return np.bincount(
            self.rank_of_particle, minlength=self.n_ranks
        ).astype(np.int64)

    def mean_neighbor_counts(self) -> np.ndarray:
        """Mean neighbors per particle, per rank."""
        if self.nlist is None or self.rank_of_particle is None:
            return np.full(self.n_ranks, 0.0)
        counts = self.nlist.counts().astype(np.float64)
        sums = np.bincount(
            self.rank_of_particle, weights=counts, minlength=self.n_ranks
        )
        nums = np.bincount(self.rank_of_particle, minlength=self.n_ranks)
        return sums / np.maximum(nums, 1)

    def _require_nlist(self) -> None:
        if self.nlist is None:
            raise RuntimeError("FindNeighbors has not run this step")
