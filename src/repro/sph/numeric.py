"""Numeric backend: real SPH physics behind the instrumented loop.

At laptop scale (10^3-10^5 particles) the simulation runs the *actual*
numerics — neighbor search, XMass/density/IAD/momentum sums, gravity,
time integration — on global NumPy arrays, while the per-rank GPU cost
model is fed with the true local particle and neighbor counts from the
SFC domain decomposition. Paper-scale runs (10^8+ particles per GPU)
use the pure workload model instead; the instrumentation layer cannot
tell the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .cornerstone import (
    Box,
    discover_halos,
    morton_encode,
    decompose,
    plan_exchange,
)
from .eos import IdealGasEOS
from .kernels_math import SmoothingKernel, default_kernel
from .neighbors import NeighborList, find_neighbors
from .particles import ParticleSet
from .physics import (
    ArtificialViscosity,
    GravityConfig,
    TimestepControl,
    compute_density_gradh,
    compute_gravity,
    compute_iad_divv_curlv,
    compute_momentum_energy,
    compute_xmass,
    local_timestep,
    update_quantities,
)
from .physics.positions import IntegrationConfig

#: Wire bytes per exchanged particle (9 primary float64 fields).
EXCHANGE_BYTES_PER_PARTICLE = 9 * 8

#: Wire bytes per halo particle (position, h, m, rho, p, v, u...).
HALO_BYTES_PER_PARTICLE = 11 * 8


@dataclass
class NumericProblem:
    """Global-array physics state shared by all simulated ranks."""

    particles: ParticleSet
    n_ranks: int
    kernel: SmoothingKernel = field(default_factory=default_kernel)
    eos: IdealGasEOS = field(default_factory=IdealGasEOS)
    box_size: Optional[float] = None
    gravity: Optional[GravityConfig] = None
    av: ArtificialViscosity = field(default_factory=ArtificialViscosity)
    timestep: TimestepControl = field(default_factory=TimestepControl)
    integration: IntegrationConfig = field(default_factory=IntegrationConfig)
    driver: Optional[object] = None  # TurbulenceDriver-compatible

    # -- per-step state -------------------------------------------------------
    nlist: Optional[NeighborList] = None
    rank_of_particle: Optional[np.ndarray] = None
    dt: float = 0.0
    previous_dt: Optional[float] = None
    step_index: int = 0
    #: Bytes to exchange between rank pairs this step (n_ranks^2).
    exchange_bytes: Optional[np.ndarray] = None
    _gravity_acc: Optional[np.ndarray] = None
    _previous_ranks: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Step functions (called by the Simulation in loop order)
    # ------------------------------------------------------------------

    def domain_decomp_and_sync(self) -> None:
        """SFC decomposition, migration plan, halo discovery."""
        p = self.particles
        if self.box_size is not None:
            box = Box.cube(0.0, self.box_size)
        else:
            box = Box.bounding(p.x, p.y, p.z)
        keys = morton_encode(p.x, p.y, p.z, box)
        order = np.argsort(keys, kind="stable")
        assignment = decompose(keys[order], self.n_ranks)
        new_ranks = assignment.rank_of_keys(keys)

        migration_bytes = np.zeros((self.n_ranks, self.n_ranks))
        if self._previous_ranks is not None:
            plan = plan_exchange(
                self._previous_ranks, new_ranks, self.n_ranks
            )
            migration_bytes = plan.bytes_per_pair(EXCHANGE_BYTES_PER_PARTICLE)
        self._previous_ranks = new_ranks
        self.rank_of_particle = new_ranks

        if self.n_ranks > 1:
            halos = discover_halos(
                p.positions(),
                p.h,
                new_ranks,
                self.n_ranks,
                support_radius=self.kernel.support_radius,
                box_size=self.box_size,
            )
            halo_bytes = (
                halos.send_counts.astype(np.float64) * HALO_BYTES_PER_PARTICLE
            )
        else:
            halo_bytes = np.zeros((1, 1))
        self.exchange_bytes = migration_bytes + halo_bytes

    def find_neighbors(self) -> None:
        self.nlist = find_neighbors(
            self.particles,
            support_radius=self.kernel.support_radius,
            box_size=self.box_size,
        )

    def xmass(self) -> None:
        self._require_nlist()
        compute_xmass(self.particles, self.nlist, self.kernel, self.box_size)

    def normalization_gradh(self) -> None:
        self._require_nlist()
        compute_density_gradh(
            self.particles, self.nlist, self.kernel, self.box_size
        )

    def equation_of_state(self) -> None:
        self.eos.apply(self.particles)

    def iad_velocity_div_curl(self) -> None:
        self._require_nlist()
        compute_iad_divv_curlv(
            self.particles, self.nlist, self.kernel, self.box_size
        )

    def gravity_step(self) -> None:
        if self.gravity is None:
            raise RuntimeError("gravity is not enabled for this problem")
        self._gravity_acc = compute_gravity(self.particles, self.gravity)

    def momentum_energy(self) -> None:
        self._require_nlist()
        ext = None
        if self._gravity_acc is not None:
            ext = self._gravity_acc
        if self.driver is not None:
            drive = self.driver.acceleration(self.particles)
            ext = drive if ext is None else ext + drive
        compute_momentum_energy(
            self.particles,
            self.nlist,
            self.kernel,
            av=self.av,
            box_size=self.box_size,
            external_ax=None if ext is None else ext[:, 0],
            external_ay=None if ext is None else ext[:, 1],
            external_az=None if ext is None else ext[:, 2],
        )

    def local_timesteps(self) -> List[float]:
        """Per-rank local dt values (before the global min-reduction)."""
        self._require_nlist()
        dt_global = local_timestep(
            self.particles,
            self.nlist,
            control=self.timestep,
            previous_dt=self.previous_dt,
            box_size=self.box_size,
        )
        # All ranks see (nearly) the same particles here because the
        # numerics are global; per-rank jitter is not modelled.
        return [dt_global] * self.n_ranks

    def set_global_dt(self, dt: float) -> None:
        self.dt = dt

    def update_quantities(self) -> None:
        if self.dt <= 0:
            raise RuntimeError("global dt has not been reduced yet")
        update_quantities(
            self.particles,
            self.dt,
            nlist=self.nlist,
            config=self.integration,
            box_size=self.box_size,
        )
        self.previous_dt = self.dt
        self.step_index += 1
        self._gravity_acc = None

    # ------------------------------------------------------------------
    # Feedback to the workload model
    # ------------------------------------------------------------------

    def local_particle_counts(self) -> np.ndarray:
        """Particles per rank under the current decomposition."""
        if self.rank_of_particle is None:
            n = self.particles.n
            base = np.full(self.n_ranks, n // self.n_ranks, dtype=np.int64)
            base[: n % self.n_ranks] += 1
            return base
        return np.bincount(
            self.rank_of_particle, minlength=self.n_ranks
        ).astype(np.int64)

    def mean_neighbor_counts(self) -> np.ndarray:
        """Mean neighbors per particle, per rank."""
        if self.nlist is None or self.rank_of_particle is None:
            return np.full(self.n_ranks, 0.0)
        counts = self.nlist.counts().astype(np.float64)
        sums = np.bincount(
            self.rank_of_particle, weights=counts, minlength=self.n_ranks
        )
        nums = np.bincount(self.rank_of_particle, minlength=self.n_ranks)
        return sums / np.maximum(nums, 1)

    def _require_nlist(self) -> None:
        if self.nlist is None:
            raise RuntimeError("FindNeighbors has not run this step")
