"""Smoothing kernels and their derivatives (3-D, vectorized).

Two standard SPH kernels are provided:

* the M4 **cubic spline** (Monaghan & Lattanzio 1985), compact support
  ``2h``;
* the **Wendland C6** kernel (Dehnen & Aly 2012), compact support
  ``2h`` — the production kernel family of SPH-EXA/SPHYNX.

Conventions: ``q = r / h``; ``W(r, h) = sigma / h^3 * w(q)``;
``grad_i W`` points along ``r_ij`` and is returned as the scalar
``dW/dr`` so callers can multiply by the unit separation vector.
``dW/dh`` is provided for the grad-h (Omega) correction terms of
NormalizationGradh.
"""

from __future__ import annotations

import abc

import numpy as np


class SmoothingKernel(abc.ABC):
    """Interface of a compact-support smoothing kernel."""

    #: Support radius in units of h (r < support_radius * h).
    support_radius: float = 2.0

    @abc.abstractmethod
    def w(self, q: np.ndarray) -> np.ndarray:
        """Dimensionless kernel profile w(q)."""

    @abc.abstractmethod
    def dw(self, q: np.ndarray) -> np.ndarray:
        """Derivative dw/dq."""

    @property
    @abc.abstractmethod
    def sigma(self) -> float:
        """3-D normalization constant."""

    # -- dimensional forms --------------------------------------------------

    def value(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """W(r, h) = sigma / h^3 w(r/h)."""
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.sigma / h**3 * self.w(q)

    def grad_r(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """dW/dr = sigma / h^4 w'(r/h)."""
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.sigma / h**4 * self.dw(q)

    def grad_h(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """dW/dh = -sigma / h^4 (3 w(q) + q w'(q)).

        Needed by the grad-h correction Omega_i = 1 + (h_i / 3 rho_i)
        * sum_j m_j dW/dh.
        """
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return -self.sigma / h**4 * (3.0 * self.w(q) + q * self.dw(q))

    def self_value(self, h: np.ndarray) -> np.ndarray:
        """W(0, h), the self-contribution to density sums."""
        h = np.asarray(h, dtype=np.float64)
        return self.sigma / h**3 * self.w(np.zeros_like(h))


class CubicSplineKernel(SmoothingKernel):
    """M4 cubic spline with support 2h; sigma = 1/pi in 3-D."""

    support_radius = 2.0

    @property
    def sigma(self) -> float:
        return 1.0 / np.pi

    def w(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inner = q < 1.0
        outer = (q >= 1.0) & (q < 2.0)
        qi = q[inner]
        out[inner] = 1.0 - 1.5 * qi**2 + 0.75 * qi**3
        qo = q[outer]
        out[outer] = 0.25 * (2.0 - qo) ** 3
        return out

    def dw(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inner = q < 1.0
        outer = (q >= 1.0) & (q < 2.0)
        qi = q[inner]
        out[inner] = -3.0 * qi + 2.25 * qi**2
        qo = q[outer]
        out[outer] = -0.75 * (2.0 - qo) ** 2
        return out


class WendlandC6Kernel(SmoothingKernel):
    """Wendland C6 with support 2h; sigma = 1365/(64 pi) for q in [0,2].

    Profile (for s = q/2 in [0, 1]):
        w = (1-s)^8 (1 + 8 s + 25 s^2 + 32 s^3)
    """

    support_radius = 2.0

    @property
    def sigma(self) -> float:
        # 1365/(512 pi) for the s-normalized form on [0,1]; rescaling
        # to q in [0,2] multiplies the integral by 2^3.
        return 1365.0 / (512.0 * np.pi)

    def w(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        s = np.clip(q / 2.0, 0.0, 1.0)
        one_m = 1.0 - s
        poly = 1.0 + 8.0 * s + 25.0 * s**2 + 32.0 * s**3
        out = one_m**8 * poly
        out[q >= 2.0] = 0.0
        return out

    def dw(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        s = np.clip(q / 2.0, 0.0, 1.0)
        one_m = 1.0 - s
        # d/ds [ (1-s)^8 (1+8s+25s^2+32s^3) ]
        dpoly = 8.0 + 50.0 * s + 96.0 * s**2
        dds = -8.0 * one_m**7 * (1.0 + 8.0 * s + 25.0 * s**2 + 32.0 * s**3) + (
            one_m**8 * dpoly
        )
        out = dds * 0.5  # ds/dq = 1/2
        out[q >= 2.0] = 0.0
        return out


def default_kernel() -> SmoothingKernel:
    """The production kernel (Wendland C6, as in SPH-EXA)."""
    return WendlandC6Kernel()
