"""The SPH-EXA-like simulation framework (DESIGN.md §2-§3)."""

from .eos import IdealGasEOS, IsothermalEOS
from .geometry import PairTable, StepGeometry, scatter_sum
from .kernels_math import (
    CubicSplineKernel,
    SmoothingKernel,
    WendlandC6Kernel,
    default_kernel,
)
from .neighbors import (
    NeighborList,
    find_neighbors,
    find_neighbors_bruteforce,
    pair_displacements,
    symmetric_pairs,
)
from .neighbors_cell import find_neighbors_cell_list
from .io import CheckpointMeta, load_checkpoint, save_checkpoint
from .numeric import NumericProblem
from .particles import DERIVED_FIELDS, PRIMARY_FIELDS, ParticleSet
from .propagator import (
    StepFunction,
    hydro_gravity_propagator,
    hydro_propagator,
    propagator_for,
)
from .simulation import (
    Simulation,
    SimulationResult,
    run_instrumented,
)
from .workload import (
    FULL_UTILIZATION_PARTICLES,
    GRAVITY_COST,
    REFERENCE_NEIGHBORS,
    SPH_FUNCTION_COSTS,
    WORKLOAD_ALIASES,
    WORKLOAD_NAMES,
    KernelCost,
    WorkloadModel,
    function_names,
    max_particles_per_gpu,
    resolve_workload,
)

__all__ = [
    "IdealGasEOS",
    "IsothermalEOS",
    "PairTable",
    "StepGeometry",
    "scatter_sum",
    "CubicSplineKernel",
    "SmoothingKernel",
    "WendlandC6Kernel",
    "default_kernel",
    "NeighborList",
    "find_neighbors",
    "find_neighbors_bruteforce",
    "find_neighbors_cell_list",
    "pair_displacements",
    "symmetric_pairs",
    "CheckpointMeta",
    "load_checkpoint",
    "save_checkpoint",
    "NumericProblem",
    "DERIVED_FIELDS",
    "PRIMARY_FIELDS",
    "ParticleSet",
    "StepFunction",
    "hydro_gravity_propagator",
    "hydro_propagator",
    "propagator_for",
    "Simulation",
    "SimulationResult",
    "run_instrumented",
    "FULL_UTILIZATION_PARTICLES",
    "GRAVITY_COST",
    "REFERENCE_NEIGHBORS",
    "SPH_FUNCTION_COSTS",
    "KernelCost",
    "WorkloadModel",
    "function_names",
    "WORKLOAD_ALIASES",
    "WORKLOAD_NAMES",
    "resolve_workload",
    "max_particles_per_gpu",
]
