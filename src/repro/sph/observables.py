"""Diagnostics: conserved quantities and flow statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .particles import ParticleSet
from .physics.gravity import GravityConfig, potential_energy


@dataclass(frozen=True)
class EnergyBudget:
    """Total energy split of a particle set at one instant."""

    kinetic: float
    internal: float
    potential: float

    @property
    def total(self) -> float:
        return self.kinetic + self.internal + self.potential


def energy_budget(
    particles: ParticleSet,
    gravity: Optional[GravityConfig] = None,
) -> EnergyBudget:
    """Kinetic + internal (+ softened potential when gravity is on)."""
    pot = potential_energy(particles, gravity) if gravity is not None else 0.0
    return EnergyBudget(
        kinetic=particles.kinetic_energy(),
        internal=particles.internal_energy(),
        potential=pot,
    )


def rms_mach(particles: ParticleSet) -> float:
    """RMS Mach number against the per-particle sound speed."""
    if particles.c is None:
        raise ValueError("sound speed not computed")
    v2 = particles.vx**2 + particles.vy**2 + particles.vz**2
    c2 = np.maximum(particles.c**2, 1e-300)
    return float(np.sqrt(np.mean(v2 / c2)))


def density_contrast(particles: ParticleSet) -> float:
    """max(rho) / mean(rho) — collapse progress indicator for Evrard."""
    if particles.rho is None:
        raise ValueError("density not computed")
    return float(np.max(particles.rho) / np.mean(particles.rho))


def half_mass_radius(particles: ParticleSet) -> float:
    """Radius enclosing half the total mass (about the center of mass)."""
    pos = particles.positions()
    com = np.average(pos, axis=0, weights=particles.m)
    r = np.sqrt(np.sum((pos - com) ** 2, axis=1))
    order = np.argsort(r)
    cum = np.cumsum(particles.m[order])
    idx = int(np.searchsorted(cum, 0.5 * cum[-1]))
    return float(r[order[min(idx, len(r) - 1)]])
