"""Neighbor search (FindNeighbors substrate).

Produces CSR-style neighbor lists: ``neighbors[offsets[i]:offsets[i+1]]``
are the indices within ``2 h_i`` of particle ``i`` (self excluded).
Backed by :class:`scipy.spatial.cKDTree`, with native periodic-box
support for the turbulence workload. A brute-force reference
implementation is kept for cross-validation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from .particles import ParticleSet


@dataclass
class NeighborList:
    """CSR neighbor structure.

    Attributes
    ----------
    neighbors:
        Flat int64 array of neighbor indices.
    offsets:
        int64 array of length n+1; particle i's neighbors live in
        ``neighbors[offsets[i]:offsets[i+1]]``.
    """

    neighbors: np.ndarray
    offsets: np.ndarray

    @property
    def n(self) -> int:
        return len(self.offsets) - 1

    def counts(self) -> np.ndarray:
        """Neighbor count per particle."""
        return np.diff(self.offsets)

    def of(self, i: int) -> np.ndarray:
        """Neighbor indices of particle ``i``."""
        return self.neighbors[self.offsets[i] : self.offsets[i + 1]]

    @property
    def total_pairs(self) -> int:
        """Total directed neighbor pairs (drives kernel workload)."""
        return int(len(self.neighbors))

    def mean_count(self) -> float:
        """Average neighbors per particle."""
        if self.n == 0:
            return 0.0
        return self.total_pairs / self.n


def find_neighbors(
    particles: ParticleSet,
    support_radius: float = 2.0,
    box_size: Optional[float] = None,
) -> NeighborList:
    """Find all neighbors within ``support_radius * h_i`` of each particle.

    ``box_size`` enables a cubic periodic domain ``[0, box_size)^3``
    (positions must already be wrapped into it).
    """
    pos = particles.positions()
    if box_size is not None:
        if np.any(pos < 0.0) or np.any(pos >= box_size):
            raise ValueError("positions must lie in [0, box_size) for periodic search")
        tree = cKDTree(pos, boxsize=box_size)
    else:
        tree = cKDTree(pos)
    radii = support_radius * particles.h
    lists = tree.query_ball_point(pos, radii, workers=-1)
    counts = np.fromiter((len(l) for l in lists), dtype=np.int64, count=len(lists))
    # Flatten in one pass; chaining the raw Python lists avoids one
    # intermediate ndarray per particle.
    flat = np.fromiter(
        chain.from_iterable(lists), dtype=np.int64, count=int(counts.sum())
    )
    # Drop self references.
    owner = np.repeat(np.arange(len(lists), dtype=np.int64), counts)
    keep = flat != owner
    flat = flat[keep]
    new_counts = np.bincount(owner[keep], minlength=len(lists)).astype(np.int64)
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(new_counts, out=offsets[1:])
    return NeighborList(neighbors=flat, offsets=offsets)


def find_neighbors_bruteforce(
    particles: ParticleSet,
    support_radius: float = 2.0,
    box_size: Optional[float] = None,
) -> NeighborList:
    """O(n^2) reference implementation (tests only)."""
    pos = particles.positions()
    n = particles.n
    radii = support_radius * particles.h
    neigh = []
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        d = pos - pos[i]
        if box_size is not None:
            d -= box_size * np.round(d / box_size)
        r = np.sqrt(np.sum(d * d, axis=1))
        idx = np.where((r < radii[i]) & (np.arange(n) != i))[0]
        neigh.append(idx.astype(np.int64))
        counts[i] = len(idx)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat = (
        np.concatenate(neigh) if neigh else np.empty(0, dtype=np.int64)
    )
    return NeighborList(neighbors=flat, offsets=offsets)


def pairs_member_mask(
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    query_i: np.ndarray,
    query_j: np.ndarray,
) -> np.ndarray:
    """Membership of query pairs in a directed pair set, vectorized.

    Returns a boolean mask: ``True`` where ``(query_i[k], query_j[k])``
    occurs in ``{(i_idx[p], j_idx[p])}``. Implemented as a lexsort of
    the pair set followed by a vectorized binary search per query —
    no scalar key encoding, so it cannot overflow regardless of ``n``
    (the historical ``i * n + j`` int64 keys silently wrapped once the
    pairs-space exceeded 2^63). When every index fits in 31 bits the
    pairs pack losslessly into one int64 via a shift (no multiply, no
    wrap possible), which trades the lexsort for a single flat sort —
    about 3x faster on multi-million-pair lists.
    """
    if len(i_idx) == 0 or len(query_i) == 0:
        return np.zeros(len(query_i), dtype=bool)
    hi_bound = max(
        int(i_idx.max()), int(j_idx.max()),
        int(query_i.max()), int(query_j.max()),
    )
    if hi_bound < (1 << 31):
        keys = np.sort((i_idx << 32) | j_idx)
        query = (query_i << 32) | query_j
        pos = np.searchsorted(keys, query)
        pos = np.minimum(pos, len(keys) - 1)
        return keys[pos] == query
    order = np.lexsort((j_idx, i_idx))
    si = i_idx[order]
    sj = j_idx[order]
    lo = np.searchsorted(si, query_i, side="left")
    seg_hi = np.searchsorted(si, query_i, side="right")
    # Lower-bound binary search for query_j inside each [lo, seg_hi)
    # run of sj (sorted within equal-si runs by the lexsort). All
    # queries advance together; O(log max_neighbors) vectorized passes.
    hi = seg_hi.copy()
    while True:
        active = lo < hi
        if not np.any(active):
            break
        mid = (lo + hi) >> 1
        probe = np.where(active, mid, 0)
        less = sj[probe] < query_j
        lo = np.where(active & less, mid + 1, lo)
        hi = np.where(active & ~less, mid, hi)
    found = np.zeros(len(query_i), dtype=bool)
    inside = lo < seg_hi  # still within the si == query_i run
    idx = np.flatnonzero(inside)
    if idx.size:
        found[idx] = sj[lo[idx]] == query_j[idx]
    return found


def mirror_missing(i_idx: np.ndarray, j_idx: np.ndarray) -> np.ndarray:
    """Mask of directed pairs whose mirror ``(j, i)`` is absent."""
    return ~pairs_member_mask(i_idx, j_idx, j_idx, i_idx)


def symmetric_pairs(nlist: NeighborList) -> "tuple[np.ndarray, np.ndarray]":
    """Directed pair arrays closed under reversal.

    With adaptive smoothing lengths the gather lists are asymmetric:
    ``j`` can be within ``2 h_i`` of ``i`` while ``i`` is outside
    ``2 h_j``. Momentum-conserving force sums need every such pair in
    *both* directions so action and reaction are both accumulated; this
    helper appends the missing mirrored entries.

    Callers inside the step loop should prefer the cached closure on
    :class:`repro.sph.geometry.StepGeometry`, which runs this scan at
    most once per neighbor-geometry build.
    """
    n = nlist.n
    i_idx = np.repeat(np.arange(n, dtype=np.int64), nlist.counts())
    j_idx = np.asarray(nlist.neighbors, dtype=np.int64)
    missing = mirror_missing(i_idx, j_idx)
    if np.any(missing):
        extra_i = j_idx[missing]
        extra_j = i_idx[missing]
        i_idx = np.concatenate([i_idx, extra_i])
        j_idx = np.concatenate([j_idx, extra_j])
    return i_idx, j_idx


def pair_displacements_from_indices(
    particles: ParticleSet,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    box_size: Optional[float] = None,
):
    """Displacements/distances for explicit directed pair arrays."""
    dx = particles.x[i_idx] - particles.x[j_idx]
    dy = particles.y[i_idx] - particles.y[j_idx]
    dz = particles.z[i_idx] - particles.z[j_idx]
    if box_size is not None:
        dx -= box_size * np.round(dx / box_size)
        dy -= box_size * np.round(dy / box_size)
        dz -= box_size * np.round(dz / box_size)
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    r = np.maximum(r, 1e-300)
    return dx, dy, dz, r, i_idx, j_idx


def pair_displacements(
    particles: ParticleSet,
    nlist: NeighborList,
    box_size: Optional[float] = None,
):
    """Per-pair displacement vectors and distances (CSR-aligned).

    Returns ``(dx, dy, dz, r, i_idx, j_idx)`` where each array has one
    entry per directed neighbor pair and ``d* = x_i - x_j`` with the
    minimum-image convention when periodic. Distances are clipped away
    from zero to keep downstream divisions safe for coincident points.
    """
    i_idx = np.repeat(
        np.arange(nlist.n, dtype=np.int64), nlist.counts()
    )
    j_idx = nlist.neighbors
    dx = particles.x[i_idx] - particles.x[j_idx]
    dy = particles.y[i_idx] - particles.y[j_idx]
    dz = particles.z[i_idx] - particles.z[j_idx]
    if box_size is not None:
        dx -= box_size * np.round(dx / box_size)
        dy -= box_size * np.round(dy / box_size)
        dz -= box_size * np.round(dz / box_size)
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    r = np.maximum(r, 1e-300)
    return dx, dy, dz, r, i_idx, j_idx
