"""Morton (Z-order) space-filling-curve keys, vectorized.

Cornerstone (Keller et al., PASC'23) sorts particles by SFC key and
derives the octree and the domain decomposition from key ranges. We
implement 63-bit Morton keys (21 bits per dimension) with NumPy bit
manipulation — no Python-level loops over particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bits per dimension in a 63-bit Morton key.
MORTON_BITS = 21

#: Number of cells per dimension at the deepest level.
MORTON_CELLS = 1 << MORTON_BITS

#: Largest valid key (exclusive upper bound is 1 << 63).
MORTON_KEY_MAX = (1 << (3 * MORTON_BITS)) - 1


@dataclass(frozen=True)
class Box:
    """Axis-aligned bounding box of the global domain."""

    xmin: float
    xmax: float
    ymin: float
    ymax: float
    zmin: float
    zmax: float

    def __post_init__(self) -> None:
        if not (
            self.xmax > self.xmin
            and self.ymax > self.ymin
            and self.zmax > self.zmin
        ):
            raise ValueError("box must have positive extent in every dimension")

    @staticmethod
    def cube(lo: float, hi: float) -> "Box":
        return Box(lo, hi, lo, hi, lo, hi)

    @property
    def lengths(self) -> np.ndarray:
        return np.array(
            [
                self.xmax - self.xmin,
                self.ymax - self.ymin,
                self.zmax - self.zmin,
            ]
        )

    @staticmethod
    def bounding(x: np.ndarray, y: np.ndarray, z: np.ndarray, pad: float = 1e-9) -> "Box":
        """Smallest padded box containing the points."""
        return Box(
            float(np.min(x)) - pad,
            float(np.max(x)) + pad,
            float(np.min(y)) - pad,
            float(np.max(y)) + pad,
            float(np.min(z)) - pad,
            float(np.max(z)) + pad,
        )


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each of the low 21 bits of ``v``."""
    x = v.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact_bits(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def cell_coords(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, box: Box
) -> np.ndarray:
    """Integer grid coordinates (n, 3) of points at the deepest level."""
    lengths = box.lengths
    ix = ((np.asarray(x) - box.xmin) / lengths[0] * MORTON_CELLS).astype(np.int64)
    iy = ((np.asarray(y) - box.ymin) / lengths[1] * MORTON_CELLS).astype(np.int64)
    iz = ((np.asarray(z) - box.zmin) / lengths[2] * MORTON_CELLS).astype(np.int64)
    coords = np.stack([ix, iy, iz], axis=1)
    if np.any(coords < 0) or np.any(coords >= MORTON_CELLS):
        raise ValueError("points outside the domain box")
    return coords


def morton_encode(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, box: Box
) -> np.ndarray:
    """63-bit Morton keys of the points (uint64 array)."""
    coords = cell_coords(x, y, z, box)
    return (
        _spread_bits(coords[:, 0])
        | (_spread_bits(coords[:, 1]) << np.uint64(1))
        | (_spread_bits(coords[:, 2]) << np.uint64(2))
    )


def morton_decode(keys: np.ndarray) -> np.ndarray:
    """Integer grid coordinates (n, 3) from Morton keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    ix = _compact_bits(keys)
    iy = _compact_bits(keys >> np.uint64(1))
    iz = _compact_bits(keys >> np.uint64(2))
    return np.stack(
        [ix.astype(np.int64), iy.astype(np.int64), iz.astype(np.int64)], axis=1
    )


def key_at_level(keys: np.ndarray, level: int) -> np.ndarray:
    """Truncate keys to an octree level (0 = root, 21 = deepest)."""
    if not 0 <= level <= MORTON_BITS:
        raise ValueError(f"level must be in [0, {MORTON_BITS}]")
    shift = np.uint64(3 * (MORTON_BITS - level))
    keys = np.asarray(keys, dtype=np.uint64)
    return (keys >> shift) << shift
