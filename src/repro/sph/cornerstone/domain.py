"""SFC-based domain decomposition (the DomainDecompAndSync substrate).

Ranks own contiguous Morton-key ranges chosen so particle counts are
balanced: the sorted global key array is cut into ``n_ranks`` equal
slices and the cut keys become the rank boundaries, exactly the
Cornerstone assignment strategy. Re-decomposition after particles move
yields the set of migrating particles, whose bytes drive the simulated
halo/exchange communication costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .morton import MORTON_BITS, Box, morton_encode


@dataclass
class DomainAssignment:
    """Rank ownership of SFC key ranges.

    ``rank_boundaries`` has length ``n_ranks + 1``; rank ``r`` owns keys
    in ``[rank_boundaries[r], rank_boundaries[r+1])``.
    """

    rank_boundaries: np.ndarray

    @property
    def n_ranks(self) -> int:
        return len(self.rank_boundaries) - 1

    def rank_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Owning rank of each key."""
        idx = (
            np.searchsorted(self.rank_boundaries, np.asarray(keys, np.uint64), side="right")
            - 1
        )
        return np.clip(idx, 0, self.n_ranks - 1).astype(np.int64)

    def validate(self) -> None:
        b = self.rank_boundaries.astype(object)
        if b[0] != 0 or int(b[-1]) != (1 << (3 * MORTON_BITS)):
            raise ValueError("rank boundaries must span the whole key space")
        if np.any(np.diff(b) < 0):
            raise ValueError("rank boundaries must be non-decreasing")


def decompose(sorted_keys: np.ndarray, n_ranks: int) -> DomainAssignment:
    """Equal-count decomposition of a *sorted* global key array."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    keys = np.asarray(sorted_keys, dtype=np.uint64)
    n = len(keys)
    upper = np.uint64(1) << np.uint64(3 * MORTON_BITS)
    bounds = np.empty(n_ranks + 1, dtype=np.uint64)
    bounds[0] = 0
    bounds[n_ranks] = upper
    for r in range(1, n_ranks):
        cut = (n * r) // n_ranks
        # The boundary is the key of the first particle of rank r, so key
        # ties never split across ranks (match Cornerstone semantics).
        bounds[r] = keys[cut] if n else upper
    # Guard monotonicity under heavy key ties.
    for r in range(1, n_ranks + 1):
        if bounds[r] < bounds[r - 1]:
            bounds[r] = bounds[r - 1]
    assignment = DomainAssignment(rank_boundaries=bounds)
    assignment.validate()
    return assignment


@dataclass
class ExchangePlan:
    """Which particles must migrate between ranks after re-decomposition."""

    #: matrix[src][dst] = number of particles moving src -> dst.
    send_counts: np.ndarray

    @property
    def n_ranks(self) -> int:
        return len(self.send_counts)

    @property
    def total_migrating(self) -> int:
        off = self.send_counts.copy()
        np.fill_diagonal(off, 0)
        return int(off.sum())

    def bytes_per_pair(self, bytes_per_particle: int = 9 * 8) -> np.ndarray:
        """Wire bytes for each (src, dst) pair (9 float64 fields/particle)."""
        off = self.send_counts.astype(np.float64) * bytes_per_particle
        np.fill_diagonal(off, 0.0)
        return off


def plan_exchange(
    current_rank: np.ndarray, target_rank: np.ndarray, n_ranks: int
) -> ExchangePlan:
    """Build the migration matrix from per-particle old/new owners."""
    if len(current_rank) != len(target_rank):
        raise ValueError("owner arrays must align")
    flat = current_rank.astype(np.int64) * n_ranks + target_rank.astype(np.int64)
    counts = np.bincount(flat, minlength=n_ranks * n_ranks)
    return ExchangePlan(send_counts=counts.reshape(n_ranks, n_ranks))


def assign_particles(
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    box: Box,
    n_ranks: int,
) -> tuple:
    """Convenience: keys, sort order, and assignment for raw positions.

    Returns ``(keys, order, assignment, rank_of_particle)`` where
    ``order`` sorts particles into SFC order and ``rank_of_particle``
    is in the *original* particle order.
    """
    keys = morton_encode(x, y, z, box)
    order = np.argsort(keys, kind="stable")
    assignment = decompose(keys[order], n_ranks)
    return keys, order, assignment, assignment.rank_of_keys(keys)
