"""Cornerstone-like SFC octree, domain decomposition and halos."""

from .domain import (
    DomainAssignment,
    ExchangePlan,
    assign_particles,
    decompose,
    plan_exchange,
)
from .halos import HaloPlan, RankAabb, discover_halos
from .morton import (
    MORTON_BITS,
    MORTON_CELLS,
    MORTON_KEY_MAX,
    Box,
    cell_coords,
    key_at_level,
    morton_decode,
    morton_encode,
)
from .octree import Octree, build_octree

__all__ = [
    "DomainAssignment",
    "ExchangePlan",
    "assign_particles",
    "decompose",
    "plan_exchange",
    "HaloPlan",
    "RankAabb",
    "discover_halos",
    "MORTON_BITS",
    "MORTON_CELLS",
    "MORTON_KEY_MAX",
    "Box",
    "cell_coords",
    "key_at_level",
    "morton_decode",
    "morton_encode",
    "Octree",
    "build_octree",
]
