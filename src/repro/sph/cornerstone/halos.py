"""Halo discovery for the decomposed domain.

A rank needs ghost copies of remote particles within the kernel support
(``2 h``) of any of its own particles. We approximate the discovery the
way distributed SPH codes do in practice: a particle is a halo
candidate for a neighboring rank when it lies within the search radius
of that rank's axis-aligned bounding box (expanded by the local maximum
support radius). Candidate counts per (owner, consumer) pair drive the
simulated halo-exchange traffic of ``DomainDecompAndSync``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class RankAabb:
    """Per-rank particle bounding box."""

    lo: np.ndarray  # (3,)
    hi: np.ndarray  # (3,)

    @staticmethod
    def of_points(pos: np.ndarray) -> "RankAabb":
        if len(pos) == 0:
            zeros = np.zeros(3)
            return RankAabb(lo=zeros, hi=zeros)
        return RankAabb(lo=pos.min(axis=0), hi=pos.max(axis=0))

    def distance(self, pos: np.ndarray, box_size: float | None = None) -> np.ndarray:
        """Euclidean distance of each point to this box (0 if inside)."""
        d = np.maximum(self.lo - pos, 0.0)
        d = np.maximum(d, pos - self.hi)
        if box_size is not None:
            # Minimum-image per axis for periodic domains.
            lo_wrap = np.maximum((self.lo - box_size) - pos, 0.0)
            lo_wrap = np.maximum(lo_wrap, pos - (self.hi - box_size))
            hi_wrap = np.maximum((self.lo + box_size) - pos, 0.0)
            hi_wrap = np.maximum(hi_wrap, pos - (self.hi + box_size))
            d = np.minimum(d, np.minimum(lo_wrap, hi_wrap))
        return np.sqrt(np.sum(d * d, axis=1))


@dataclass
class HaloPlan:
    """Halo traffic: ``send_counts[owner][consumer]`` ghost particles."""

    send_counts: np.ndarray
    #: Indices (into the global arrays) of each owner's halo particles,
    #: keyed by (owner, consumer).
    halo_indices: Dict[Tuple[int, int], np.ndarray]

    @property
    def n_ranks(self) -> int:
        return len(self.send_counts)

    @property
    def total_halos(self) -> int:
        return int(self.send_counts.sum())

    def halos_for(self, consumer: int) -> np.ndarray:
        """Global indices of all ghost particles rank ``consumer`` needs."""
        chunks = [
            idx
            for (owner, cons), idx in self.halo_indices.items()
            if cons == consumer and len(idx)
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))


def discover_halos(
    pos: np.ndarray,
    h: np.ndarray,
    rank_of_particle: np.ndarray,
    n_ranks: int,
    support_radius: float = 2.0,
    box_size: float | None = None,
) -> HaloPlan:
    """Find ghost candidates for every rank pair.

    Parameters
    ----------
    pos:
        (n, 3) global positions.
    h:
        Smoothing lengths.
    rank_of_particle:
        Owner rank per particle.
    support_radius:
        Kernel support in units of h.
    box_size:
        Periodic cubic box size, if periodic.
    """
    if len(pos) != len(h) or len(pos) != len(rank_of_particle):
        raise ValueError("inputs must align")
    aabbs: List[RankAabb] = []
    for r in range(n_ranks):
        aabbs.append(RankAabb.of_points(pos[rank_of_particle == r]))

    send_counts = np.zeros((n_ranks, n_ranks), dtype=np.int64)
    halo_indices: Dict[Tuple[int, int], np.ndarray] = {}
    radius = support_radius * h
    for consumer in range(n_ranks):
        dist = aabbs[consumer].distance(pos, box_size)
        near = dist <= radius
        for owner in range(n_ranks):
            if owner == consumer:
                continue
            mask = near & (rank_of_particle == owner)
            idx = np.where(mask)[0].astype(np.int64)
            if len(idx):
                halo_indices[(owner, consumer)] = idx
                send_counts[owner, consumer] = len(idx)
    return HaloPlan(send_counts=send_counts, halo_indices=halo_indices)
