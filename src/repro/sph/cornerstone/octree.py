"""Cornerstone-style octree construction from sorted Morton keys.

The octree is represented, as in Cornerstone, by a sorted array of
*leaf key boundaries*: leaf ``i`` covers the SFC key range
``[boundaries[i], boundaries[i+1])``. Construction refines any leaf
holding more than ``bucket_size`` particles by splitting it into its
eight children, entirely with NumPy ``searchsorted`` bookkeeping on the
sorted key array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .morton import MORTON_BITS


@dataclass
class Octree:
    """A leaf-array octree over a sorted key set.

    Attributes
    ----------
    boundaries:
        uint64 array of length ``n_leaves + 1``; sorted, starting at 0
        and ending at ``1 << 63``.
    counts:
        Particles per leaf (aligned with leaves).
    levels:
        Octree level of each leaf.
    """

    boundaries: np.ndarray
    counts: np.ndarray
    levels: np.ndarray

    @property
    def n_leaves(self) -> int:
        return len(self.counts)

    def leaf_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Leaf index containing each key."""
        idx = np.searchsorted(self.boundaries, keys, side="right") - 1
        return idx.astype(np.int64)

    def validate(self) -> None:
        """Raise if the leaf array is not a proper partition."""
        b = self.boundaries
        if b[0] != 0:
            raise ValueError("octree must start at key 0")
        if int(b[-1]) != (1 << (3 * MORTON_BITS)):
            raise ValueError("octree must end at the key-space upper bound")
        if np.any(np.diff(b.astype(object)) <= 0):
            raise ValueError("octree boundaries must be strictly increasing")
        if len(self.counts) != len(b) - 1:
            raise ValueError("counts misaligned with boundaries")


def build_octree(sorted_keys: np.ndarray, bucket_size: int = 64) -> Octree:
    """Build the leaf octree for ``sorted_keys`` (must be sorted).

    Every leaf holds at most ``bucket_size`` keys, unless it is already
    at the deepest level.
    """
    if bucket_size < 1:
        raise ValueError("bucket_size must be positive")
    keys = np.asarray(sorted_keys, dtype=np.uint64)
    if len(keys) > 1 and np.any(keys[1:] < keys[:-1]):
        raise ValueError("keys must be sorted")
    key_span = np.uint64(1) << np.uint64(3 * MORTON_BITS)

    # Start from the root covering the whole key space.
    bounds: List[int] = [0, int(key_span)]
    levels: List[int] = [0]

    changed = True
    while changed:
        changed = False
        new_bounds: List[int] = [0]
        new_levels: List[int] = []
        for i in range(len(levels)):
            lo, hi = bounds[i], bounds[i + 1]
            level = levels[i]
            count = int(
                np.searchsorted(keys, np.uint64(hi), side="left")
                - np.searchsorted(keys, np.uint64(lo), side="left")
            )
            if count > bucket_size and level < MORTON_BITS:
                # Split into 8 children.
                step = (hi - lo) // 8
                for c in range(1, 9):
                    new_bounds.append(lo + c * step)
                    new_levels.append(level + 1)
                changed = True
            else:
                new_bounds.append(hi)
                new_levels.append(level)
        bounds = new_bounds
        levels = new_levels

    boundaries = np.array(bounds, dtype=np.uint64)
    lefts = np.searchsorted(keys, boundaries[:-1], side="left")
    rights = np.searchsorted(keys, boundaries[1:], side="left")
    counts = (rights - lefts).astype(np.int64)
    tree = Octree(
        boundaries=boundaries,
        counts=counts,
        levels=np.array(levels, dtype=np.int64),
    )
    tree.validate()
    return tree
