"""Initial conditions: the paper's two workloads plus the Sedov blast."""

from .evrard import EvrardConfig, make_evrard
from .evrard import make_eos as make_evrard_eos
from .evrard import make_gravity as make_evrard_gravity
from .sedov import (
    SedovConfig,
    analytic_shock_radius,
    make_sedov,
    shock_radius,
)
from .sedov import make_eos as make_sedov_eos
from .sod import SodConfig, make_sod
from .sod import make_eos as make_sod_eos
from .turbulence import (
    TurbulenceConfig,
    TurbulenceDriver,
    lattice_positions,
    make_turbulence,
)
from .turbulence import make_eos as make_turbulence_eos

__all__ = [
    "SodConfig",
    "make_sod",
    "make_sod_eos",
    "SedovConfig",
    "analytic_shock_radius",
    "make_sedov",
    "make_sedov_eos",
    "shock_radius",
    "EvrardConfig",
    "make_evrard",
    "make_evrard_eos",
    "make_evrard_gravity",
    "TurbulenceConfig",
    "TurbulenceDriver",
    "lattice_positions",
    "make_turbulence",
    "make_turbulence_eos",
]
