"""Subsonic Turbulence initial conditions and driving.

The paper's primary workload: a periodic unit box of gas stirred at
large scales to a subsonic RMS Mach number. Initial velocities are a
divergence-free (solenoidal) superposition of large-scale Fourier
modes with a steep spectrum; optional driving re-applies a frozen-mode
solenoidal acceleration field so the turbulence does not decay over
the measured 100 time-steps. Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..eos import IdealGasEOS
from ..particles import ParticleSet


@dataclass(frozen=True)
class TurbulenceConfig:
    """Subsonic turbulence IC parameters."""

    nside: int = 20
    box_size: float = 1.0
    rho0: float = 1.0
    mach_rms: float = 0.3
    gamma: float = 5.0 / 3.0
    #: Sound speed defining the Mach number.
    sound_speed: float = 1.0
    #: Largest driven wavenumber (modes with |k| <= k_max are excited).
    k_max: int = 2
    #: Spectral slope of the velocity power spectrum ~ k^(-slope).
    slope: float = 2.0
    target_neighbors: int = 100
    seed: int = 42
    #: Lattice jitter as a fraction of spacing (breaks grid symmetry).
    jitter: float = 0.2

    @property
    def n_particles(self) -> int:
        return self.nside**3


def _solenoidal_field(
    pos: np.ndarray, cfg: TurbulenceConfig, rng: np.random.Generator
) -> np.ndarray:
    """Divergence-free velocity field sampled at ``pos`` (n, 3)."""
    two_pi = 2.0 * np.pi / cfg.box_size
    v = np.zeros_like(pos)
    for kx in range(-cfg.k_max, cfg.k_max + 1):
        for ky in range(-cfg.k_max, cfg.k_max + 1):
            for kz in range(-cfg.k_max, cfg.k_max + 1):
                k2 = kx * kx + ky * ky + kz * kz
                if k2 == 0 or k2 > cfg.k_max * cfg.k_max:
                    continue
                k = np.array([kx, ky, kz], dtype=np.float64)
                amp = k2 ** (-cfg.slope / 2.0)
                # Random complex amplitude, projected solenoidal.
                a = rng.normal(size=3) + 1j * rng.normal(size=3)
                a -= k * (a @ k) / k2  # remove compressive component
                phase = np.exp(1j * two_pi * (pos @ k))
                v += amp * np.real(a[None, :] * phase[:, None])
    return v


def lattice_positions(
    nside: int, box_size: float, jitter: float, rng: np.random.Generator
) -> np.ndarray:
    """Jittered cubic lattice filling the periodic box."""
    spacing = box_size / nside
    grid = (np.arange(nside) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(grid, grid, grid, indexing="ij")
    pos = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    if jitter > 0.0:
        pos += rng.uniform(-jitter, jitter, size=pos.shape) * spacing
        pos = np.mod(pos, box_size)
    return pos


def make_turbulence(cfg: TurbulenceConfig = TurbulenceConfig()) -> ParticleSet:
    """Build the subsonic-turbulence particle set."""
    rng = np.random.default_rng(cfg.seed)
    pos = lattice_positions(cfg.nside, cfg.box_size, cfg.jitter, rng)
    n = len(pos)

    v = _solenoidal_field(pos, cfg, rng)
    # Remove bulk motion, normalize to the requested RMS Mach number.
    v -= v.mean(axis=0, keepdims=True)
    rms = np.sqrt(np.mean(np.sum(v * v, axis=1)))
    if rms > 0.0:
        v *= cfg.mach_rms * cfg.sound_speed / rms

    total_mass = cfg.rho0 * cfg.box_size**3
    m = np.full(n, total_mass / n)
    # Smoothing length for the target neighbor count in a uniform medium:
    # (4 pi / 3) (2h)^3 rho = n_target m.
    h0 = 0.5 * (
        3.0 * cfg.target_neighbors * m[0] / (4.0 * np.pi * cfg.rho0)
    ) ** (1.0 / 3.0)
    h = np.full(n, h0)
    # Internal energy consistent with the sound speed for an ideal gas:
    # c^2 = gamma (gamma - 1) u.
    u0 = cfg.sound_speed**2 / (cfg.gamma * (cfg.gamma - 1.0))
    u = np.full(n, u0)

    return ParticleSet(
        x=pos[:, 0],
        y=pos[:, 1],
        z=pos[:, 2],
        vx=v[:, 0],
        vy=v[:, 1],
        vz=v[:, 2],
        m=m,
        h=h,
        u=u,
    )


class TurbulenceDriver:
    """Frozen-mode solenoidal driving acceleration.

    A fixed random solenoidal field (independent of the IC velocity
    field) applied as a body acceleration, rescaled each step so the
    injected power roughly balances decay — enough to keep the measured
    window statistically steady, which is all the energy experiments
    need.
    """

    def __init__(
        self, cfg: TurbulenceConfig, amplitude: float = 0.5, seed: int = 7
    ) -> None:
        self.cfg = cfg
        self.amplitude = amplitude
        self._rng = np.random.default_rng(seed)
        self._cached: Optional[np.ndarray] = None
        self._cached_n: int = -1

    def acceleration(self, particles: ParticleSet) -> np.ndarray:
        """(n, 3) driving acceleration at the particle positions."""
        pos = particles.positions()
        field = _solenoidal_field(pos, self.cfg, np.random.default_rng(11))
        # Remove the (sampled) mean so the driving injects no net
        # momentum into the box.
        field -= field.mean(axis=0, keepdims=True)
        rms = np.sqrt(np.mean(np.sum(field * field, axis=1)))
        if rms > 0.0:
            field *= self.amplitude * self.cfg.sound_speed / rms
        return field


def make_eos(cfg: TurbulenceConfig) -> IdealGasEOS:
    """The EOS matching the turbulence configuration."""
    return IdealGasEOS(gamma=cfg.gamma)
