"""Evrard collapse initial conditions (Evrard 1988).

The paper's second workload, chosen because it exercises *gravity*: a
cold gas sphere of mass M and radius R with density profile
``rho(r) = M / (2 pi R^2 r)`` and uniform specific internal energy
``u = 0.05 G M / R`` collapses under self-gravity, bounces, and
virializes. Sampling uses the exact inverse-CDF of the enclosed mass
``M(<r) = M (r/R)^2`` so the profile is reproduced without rejection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eos import IdealGasEOS
from ..particles import ParticleSet
from ..physics.gravity import GravityConfig


@dataclass(frozen=True)
class EvrardConfig:
    """Evrard collapse IC parameters (G = M = R = 1 units)."""

    n_particles: int = 8000
    total_mass: float = 1.0
    radius: float = 1.0
    u0_factor: float = 0.05
    gamma: float = 5.0 / 3.0
    G: float = 1.0
    target_neighbors: int = 100
    seed: int = 1234

    @property
    def u0(self) -> float:
        return self.u0_factor * self.G * self.total_mass / self.radius


def make_evrard(cfg: EvrardConfig = EvrardConfig()) -> ParticleSet:
    """Build the Evrard-collapse particle set."""
    rng = np.random.default_rng(cfg.seed)
    n = cfg.n_particles

    # Inverse CDF of M(<r) ~ r^2: r = R sqrt(F).
    fractions = (np.arange(n) + rng.uniform(0.2, 0.8, size=n)) / n
    r = cfg.radius * np.sqrt(fractions)
    # Isotropic directions.
    costheta = rng.uniform(-1.0, 1.0, size=n)
    sintheta = np.sqrt(1.0 - costheta**2)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    x = r * sintheta * np.cos(phi)
    y = r * sintheta * np.sin(phi)
    z = r * costheta

    m = np.full(n, cfg.total_mass / n)
    # Local density rho(r) = M / (2 pi R^2 r); smoothing length for the
    # target neighbor count at that density.
    rho = cfg.total_mass / (
        2.0 * np.pi * cfg.radius**2 * np.maximum(r, 1e-3 * cfg.radius)
    )
    h = 0.5 * (3.0 * cfg.target_neighbors * m / (4.0 * np.pi * rho)) ** (1.0 / 3.0)

    u = np.full(n, cfg.u0)
    zeros = np.zeros(n)
    return ParticleSet(
        x=x, y=y, z=z, vx=zeros.copy(), vy=zeros.copy(), vz=zeros.copy(),
        m=m, h=h, u=u,
    )


def make_eos(cfg: EvrardConfig) -> IdealGasEOS:
    """Adiabatic ideal-gas EOS for the collapse."""
    return IdealGasEOS(gamma=cfg.gamma)


def make_gravity(cfg: EvrardConfig) -> GravityConfig:
    """Gravity solver configuration matched to the IC resolution."""
    mean_spacing = cfg.radius / cfg.n_particles ** (1.0 / 3.0)
    return GravityConfig(theta=0.5, softening=0.5 * mean_spacing, G=cfg.G)
