"""Sod shock-tube initial conditions (3-D periodic realization).

The classic Riemann validation: a high-pressure dense region meets a
low-pressure light region. In a fully periodic cube there are two
diaphragms (at x = x_mid and at the x = 0/1 wrap); the exact solution
of the central one is valid until its waves meet the wrap's, which the
test window respects. Equal-mass particles: the right (light) region
uses a lattice twice as coarse per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eos import IdealGasEOS
from ..particles import ParticleSet
from ..riemann import GasState


@dataclass(frozen=True)
class SodConfig:
    """Sod tube parameters (classic values, gamma = 5/3 here)."""

    #: Left-half lattice cells per dimension (right half uses half).
    nside: int = 16
    box_size: float = 1.0
    rho_left: float = 1.0
    p_left: float = 1.0
    rho_right: float = 0.125
    p_right: float = 0.1
    gamma: float = 5.0 / 3.0
    target_neighbors: int = 100

    @property
    def x_mid(self) -> float:
        return 0.5 * self.box_size

    def left_state(self) -> GasState:
        return GasState(rho=self.rho_left, u=0.0, p=self.p_left)

    def right_state(self) -> GasState:
        return GasState(rho=self.rho_right, u=0.0, p=self.p_right)


def _half_lattice(nx: int, ny: int, nz: int, x_lo: float, x_hi: float,
                  box: float) -> np.ndarray:
    xs = x_lo + (np.arange(nx) + 0.5) * (x_hi - x_lo) / nx
    ys = (np.arange(ny) + 0.5) * box / ny
    zs = (np.arange(nz) + 0.5) * box / nz
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])


def make_sod(cfg: SodConfig = SodConfig()) -> ParticleSet:
    """Build the Sod tube particle set (equal-mass particles)."""
    if cfg.rho_left != 8.0 * cfg.rho_right:
        raise ValueError(
            "equal-mass lattice construction requires rho_left == 8 rho_right"
        )
    n = cfg.nside
    box = cfg.box_size
    pos_l = _half_lattice(n, n, n, 0.0, cfg.x_mid, box)
    pos_r = _half_lattice(n // 2, n // 2, n // 2, cfg.x_mid, box, box)
    pos = np.vstack([pos_l, pos_r])

    n_total = len(pos)
    mass_left = cfg.rho_left * cfg.x_mid * box * box
    m = np.full(n_total, mass_left / len(pos_l))

    # Smoothing lengths from the local lattice spacing.
    spacing_l = cfg.x_mid / n
    spacing_r = cfg.x_mid / (n // 2)
    eta = 0.5 * (3.0 * cfg.target_neighbors / (4.0 * np.pi)) ** (1.0 / 3.0)
    h = np.concatenate(
        [
            np.full(len(pos_l), eta * spacing_l),
            np.full(len(pos_r), eta * spacing_r),
        ]
    )

    # Internal energy from p = (gamma - 1) rho u.
    u_l = cfg.p_left / ((cfg.gamma - 1.0) * cfg.rho_left)
    u_r = cfg.p_right / ((cfg.gamma - 1.0) * cfg.rho_right)
    u = np.concatenate(
        [np.full(len(pos_l), u_l), np.full(len(pos_r), u_r)]
    )

    zeros = np.zeros(n_total)
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=zeros.copy(), vy=zeros.copy(), vz=zeros.copy(),
        m=m, h=h, u=u,
    )


def make_eos(cfg: SodConfig) -> IdealGasEOS:
    return IdealGasEOS(gamma=cfg.gamma)
