"""Sedov-Taylor blast wave initial conditions.

The paper's future work applies the method "to other simulation codes
that use GPU acceleration"; the Sedov blast is SPH-EXA's canonical
validation test, so the reproduction ships it as a third workload. A
uniform-density periodic box receives a point-like thermal energy spike
smoothed over the innermost particles; the blast then expands
self-similarly with the analytic shock radius

    R(t) = xi_0 * (E t^2 / rho_0)^(1/5),    xi_0 ~= 1.15 for gamma = 5/3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eos import IdealGasEOS
from ..particles import ParticleSet
from .turbulence import lattice_positions

#: Sedov similarity constant for gamma = 5/3 in 3-D.
SEDOV_XI0 = 1.15


@dataclass(frozen=True)
class SedovConfig:
    """Sedov blast IC parameters (rho_0 = 1 units)."""

    nside: int = 20
    box_size: float = 1.0
    rho0: float = 1.0
    blast_energy: float = 1.0
    #: Particles receiving the energy spike (smoothed point injection).
    spike_particles: int = 32
    #: Cold background internal energy (tiny but positive).
    u_background: float = 1e-8
    gamma: float = 5.0 / 3.0
    target_neighbors: int = 100
    seed: int = 2024
    jitter: float = 0.15

    @property
    def n_particles(self) -> int:
        return self.nside**3


def make_sedov(cfg: SedovConfig = SedovConfig()) -> ParticleSet:
    """Build the Sedov blast particle set."""
    rng = np.random.default_rng(cfg.seed)
    pos = lattice_positions(cfg.nside, cfg.box_size, cfg.jitter, rng)
    n = len(pos)

    total_mass = cfg.rho0 * cfg.box_size**3
    m = np.full(n, total_mass / n)
    h0 = 0.5 * (
        3.0 * cfg.target_neighbors * m[0] / (4.0 * np.pi * cfg.rho0)
    ) ** (1.0 / 3.0)
    h = np.full(n, h0)

    u = np.full(n, cfg.u_background)
    center = np.full(3, cfg.box_size / 2.0)
    r2 = np.sum((pos - center) ** 2, axis=1)
    spike = np.argsort(r2)[: cfg.spike_particles]
    # Kernel-weighted injection: closer particles get more energy.
    w = 1.0 / (np.sqrt(r2[spike]) + 0.1 * h0)
    w /= w.sum()
    u[spike] += cfg.blast_energy * w / m[spike]

    zeros = np.zeros(n)
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=zeros.copy(), vy=zeros.copy(), vz=zeros.copy(),
        m=m, h=h, u=u,
    )


def make_eos(cfg: SedovConfig) -> IdealGasEOS:
    """Adiabatic ideal-gas EOS for the blast."""
    return IdealGasEOS(gamma=cfg.gamma)


def analytic_shock_radius(cfg: SedovConfig, t: float) -> float:
    """Sedov-Taylor similarity solution R(t) for the configuration."""
    if t < 0:
        raise ValueError("time must be non-negative")
    return SEDOV_XI0 * (cfg.blast_energy * t**2 / cfg.rho0) ** 0.2


def shock_radius(particles: ParticleSet, cfg: SedovConfig) -> float:
    """Measured blast radius: RMS radius of outward-moving particles,
    weighted by their kinetic energy (robust against the cold tail)."""
    center = np.full(3, cfg.box_size / 2.0)
    dx = particles.x - center[0]
    dy = particles.y - center[1]
    dz = particles.z - center[2]
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    v_r = (dx * particles.vx + dy * particles.vy + dz * particles.vz) / (
        r + 1e-12
    )
    ek = 0.5 * particles.m * (
        particles.vx**2 + particles.vy**2 + particles.vz**2
    )
    weight = np.where(v_r > 0.0, ek, 0.0)
    total = weight.sum()
    if total <= 0.0:
        return 0.0
    return float(np.sqrt(np.sum(weight * r * r) / total))
