"""Spectral diagnostics for the turbulence workload.

The Subsonic Turbulence runs of the paper are driven at large scales;
the standard health check of such a simulation is the velocity power
spectrum E(k): energy must concentrate at the driven wavenumbers and
fall off toward the grid scale. The diagnostic grids the particle
velocities (CIC deposit), FFTs them, and bins |v_hat|^2 into spherical
k shells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .geometry import scatter_sum
from .particles import ParticleSet


@dataclass(frozen=True)
class PowerSpectrum:
    """Shell-binned velocity power spectrum."""

    k: np.ndarray
    energy: np.ndarray

    def peak_k(self) -> float:
        """Wavenumber shell holding the most energy."""
        return float(self.k[np.argmax(self.energy)])

    def total_energy(self) -> float:
        return float(np.sum(self.energy))


def _deposit_cic(
    particles: ParticleSet, grid: int, box_size: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cloud-in-cell deposit of the velocity field onto a cubic grid."""
    pos = particles.positions() / box_size * grid
    base = np.floor(pos - 0.5).astype(np.int64)
    frac = pos - 0.5 - base
    fields = [np.zeros((grid, grid, grid)) for _ in range(4)]
    values = [particles.vx, particles.vy, particles.vz,
              np.ones(particles.n)]
    for dx in (0, 1):
        wx = frac[:, 0] if dx else 1.0 - frac[:, 0]
        ix = np.mod(base[:, 0] + dx, grid)
        for dy in (0, 1):
            wy = frac[:, 1] if dy else 1.0 - frac[:, 1]
            iy = np.mod(base[:, 1] + dy, grid)
            for dz in (0, 1):
                wz = frac[:, 2] if dz else 1.0 - frac[:, 2]
                iz = np.mod(base[:, 2] + dz, grid)
                w = wx * wy * wz
                flat = (ix * grid + iy) * grid + iz
                for field, value in zip(fields, values):
                    field += scatter_sum(
                        flat, w * value, grid**3
                    ).reshape(grid, grid, grid)
    weight = np.maximum(fields[3], 1e-12)
    return fields[0] / weight, fields[1] / weight, fields[2] / weight


def velocity_power_spectrum(
    particles: ParticleSet,
    box_size: float = 1.0,
    grid: int = 32,
) -> PowerSpectrum:
    """Shell-averaged velocity power spectrum E(k).

    ``k`` is in units of the fundamental box mode (k=1 spans the box).
    """
    if grid < 4:
        raise ValueError("grid must be at least 4")
    vx, vy, vz = _deposit_cic(particles, grid, box_size)
    power = np.zeros((grid, grid, grid))
    for field in (vx, vy, vz):
        f_hat = np.fft.fftn(field) / grid**3
        power += np.abs(f_hat) ** 2

    freqs = np.fft.fftfreq(grid) * grid  # integer modes
    kx, ky, kz = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    k_mag = np.sqrt(kx**2 + ky**2 + kz**2)
    k_bins = np.arange(0.5, grid // 2, 1.0)
    shell = np.digitize(k_mag.ravel(), k_bins)
    energy = np.bincount(
        shell, weights=power.ravel(), minlength=len(k_bins) + 1
    )
    # Drop the k=0 (mean flow) bin and the Nyquist tail.
    ks = np.arange(1, len(k_bins))
    return PowerSpectrum(k=ks.astype(float), energy=energy[1 : len(k_bins)])


def solenoidal_fraction(
    particles: ParticleSet, box_size: float = 1.0, grid: int = 32
) -> float:
    """Fraction of velocity power in the divergence-free component.

    Helmholtz split in Fourier space: compressive power is the
    projection of ``v_hat`` onto ``k_hat``. Driven solenoidal
    turbulence should stay predominantly divergence-free.
    """
    vx, vy, vz = _deposit_cic(particles, grid, box_size)
    v_hat = np.stack(
        [np.fft.fftn(f) / grid**3 for f in (vx, vy, vz)], axis=0
    )
    freqs = np.fft.fftfreq(grid) * grid
    kx, ky, kz = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0
    dot = (v_hat[0] * kx + v_hat[1] * ky + v_hat[2] * kz) / k2
    comp = np.stack([dot * kx, dot * ky, dot * kz], axis=0)
    total = float(np.sum(np.abs(v_hat) ** 2)) - float(
        np.sum(np.abs(v_hat[:, 0, 0, 0]) ** 2)
    )
    compressive = float(np.sum(np.abs(comp) ** 2))
    if total <= 0.0:
        return 1.0
    return max(0.0, min(1.0, 1.0 - compressive / total))
