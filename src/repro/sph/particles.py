"""Particle data in structure-of-arrays layout.

SPH-EXA keeps all particle fields in flat device arrays; we mirror that
with NumPy arrays so the physics kernels vectorize. Fields follow the
SPH-EXA naming where practical (``h`` smoothing length, ``u`` specific
internal energy, ``xm`` generalized volume element mass).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Optional

import numpy as np

#: Fields every particle set carries from initialization.
PRIMARY_FIELDS = ("x", "y", "z", "vx", "vy", "vz", "m", "h", "u")

#: Fields computed by the per-step kernels.
DERIVED_FIELDS = (
    "rho",
    "p",
    "c",
    "xm",
    "kx",
    "gradh",
    "divv",
    "curlv",
    "ax",
    "ay",
    "az",
    "du",
    "c11",
    "c12",
    "c13",
    "c22",
    "c23",
    "c33",
)


@dataclass
class ParticleSet:
    """A structure-of-arrays particle container.

    All arrays are float64 and share one length ``n``. Derived fields
    are allocated lazily (zero-filled) the first time they are touched
    through :meth:`ensure_derived`.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    vz: np.ndarray
    m: np.ndarray
    h: np.ndarray
    u: np.ndarray
    rho: Optional[np.ndarray] = None
    p: Optional[np.ndarray] = None
    c: Optional[np.ndarray] = None
    xm: Optional[np.ndarray] = None
    kx: Optional[np.ndarray] = None
    gradh: Optional[np.ndarray] = None
    divv: Optional[np.ndarray] = None
    curlv: Optional[np.ndarray] = None
    ax: Optional[np.ndarray] = None
    ay: Optional[np.ndarray] = None
    az: Optional[np.ndarray] = None
    du: Optional[np.ndarray] = None
    c11: Optional[np.ndarray] = None
    c12: Optional[np.ndarray] = None
    c13: Optional[np.ndarray] = None
    c22: Optional[np.ndarray] = None
    c23: Optional[np.ndarray] = None
    c33: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.x)
        for name in PRIMARY_FIELDS:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            if arr.shape != (n,):
                raise ValueError(
                    f"field {name!r} has shape {arr.shape}, expected ({n},)"
                )
            setattr(self, name, arr)

    @property
    def n(self) -> int:
        """Number of particles."""
        return len(self.x)

    def __len__(self) -> int:
        return self.n

    def ensure_derived(self) -> None:
        """Allocate any missing derived fields as zeros."""
        for name in DERIVED_FIELDS:
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.n))

    def positions(self) -> np.ndarray:
        """(n, 3) position matrix (copy)."""
        return np.column_stack((self.x, self.y, self.z))

    def velocities(self) -> np.ndarray:
        """(n, 3) velocity matrix (copy)."""
        return np.column_stack((self.vx, self.vy, self.vz))

    def total_mass(self) -> float:
        return float(np.sum(self.m))

    def kinetic_energy(self) -> float:
        """Total kinetic energy 0.5 m v^2."""
        v2 = self.vx**2 + self.vy**2 + self.vz**2
        return float(0.5 * np.sum(self.m * v2))

    def internal_energy(self) -> float:
        """Total internal energy sum(m u)."""
        return float(np.sum(self.m * self.u))

    def momentum(self) -> np.ndarray:
        """Total linear momentum (3,)."""
        return np.array(
            [
                np.sum(self.m * self.vx),
                np.sum(self.m * self.vy),
                np.sum(self.m * self.vz),
            ]
        )

    def select(self, mask_or_index: np.ndarray) -> "ParticleSet":
        """A new particle set holding the selected particles (copies)."""
        kwargs = {}
        for f in dataclass_fields(self):
            arr = getattr(self, f.name)
            kwargs[f.name] = None if arr is None else np.copy(arr[mask_or_index])
        return ParticleSet(**kwargs)

    @staticmethod
    def concatenate(parts: list) -> "ParticleSet":
        """Concatenate particle sets (used to splice halos onto locals)."""
        if not parts:
            raise ValueError("nothing to concatenate")
        kwargs = {}
        for f in dataclass_fields(parts[0]):
            arrays = [getattr(p, f.name) for p in parts]
            if any(a is None for a in arrays):
                kwargs[f.name] = None
            else:
                kwargs[f.name] = np.concatenate(arrays)
        return ParticleSet(**kwargs)

    def state_dict(self) -> dict:
        """All fields (raw arrays), preserving unallocated derived ones."""
        state = {}
        for f in dataclass_fields(self):
            arr = getattr(self, f.name)
            state[f.name] = None if arr is None else arr
        return state

    @staticmethod
    def from_state(state: dict) -> "ParticleSet":
        """Inverse of :meth:`state_dict` (arrays already decoded)."""
        return ParticleSet(**dict(state))

    @staticmethod
    def zeros(n: int) -> "ParticleSet":
        """An all-zero particle set of size ``n`` (testing helper)."""
        return ParticleSet(
            **{name: np.zeros(n) for name in PRIMARY_FIELDS}
        )
