"""Workload model: SPH-EXA step functions -> GPU kernel work.

Maps each named function of the time-stepping loop to the floating
point operations and memory traffic one rank submits to its GPU per
step, as a function of local particle count and mean neighbor count.
The coefficients are calibrated (DESIGN.md §5) so that, on the A100
model at 450³ particles, per-function time shares, frequency
sensitivities (kappa) and power intensities land where the paper's
Figs. 2/5/8 put them — e.g. MomentumEnergy is the dominant,
compute-bound, full-power kernel, while XMass and NormalizationGradh
are memory-bound and tolerate deep down-clocking.

The *under-utilization* model reproduces Fig. 6's small-problem
behaviour: below ``FULL_UTILIZATION_PARTICLES`` kernels become
partially memory-latency bound (their time stops scaling with the core
clock) and the device draws less power, so down-clocking barely hurts
time while still cutting power — the EDP curve of the 200³ case dips
far below the fully-utilized curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..hardware.kernel import KernelLaunch

#: Neighbor count the per-particle coefficients are calibrated at.
REFERENCE_NEIGHBORS = 100.0

#: Canonical Table-I workload names.
WORKLOAD_NAMES = ("SubsonicTurbulence", "EvrardCollapse", "SedovBlast")

#: Accepted spellings (CLI flags, campaign specs) -> canonical names.
WORKLOAD_ALIASES = {
    "turbulence": "SubsonicTurbulence",
    "turb": "SubsonicTurbulence",
    "subsonicturbulence": "SubsonicTurbulence",
    "evrard": "EvrardCollapse",
    "evrardcollapse": "EvrardCollapse",
    "sedov": "SedovBlast",
    "sedovblast": "SedovBlast",
}


def resolve_workload(name: str) -> str:
    """Canonical workload name for ``name`` (alias or canonical form).

    Raises ``ValueError`` for unknown workloads, listing what exists.
    """
    try:
        return WORKLOAD_ALIASES[name.lower()]
    except KeyError:
        known = ", ".join(WORKLOAD_NAMES)
        raise ValueError(
            f"unknown workload {name!r} (known: {known})"
        ) from None

#: Particles per GPU at which an A100-class device is fully utilized.
FULL_UTILIZATION_PARTICLES = 40.0e6

#: Fraction of compute work whose time stops scaling with the core
#: clock (memory-latency bound) as utilization drops to zero.
OVERHEAD_SHIFT = 0.50

#: Power-intensity floor at zero utilization (fraction of nominal).
MIN_INTENSITY_FRACTION = 0.35

#: Reference device balance used to convert work into nominal seconds
#: for the overhead shift (A100-class: FLOP/s and bytes/s).
_REF_FLOPS = 9.7e12
_REF_BW = 2.0e12


@dataclass(frozen=True)
class KernelCost:
    """Per-step GPU cost model of one step function.

    ``flops_per_particle`` / ``bytes_per_particle`` are at the
    reference neighbor count; ``neighbor_scaled`` work grows linearly
    with the actual mean neighbor count.
    """

    function: str
    flops_per_particle: float
    bytes_per_particle: float
    intensity: float
    neighbor_scaled: bool = True
    launches: int = 1
    launch_overhead_s: float = 5.0e-6


#: The calibrated cost table (DESIGN.md §5). Order == execution order.
SPH_FUNCTION_COSTS: Tuple[KernelCost, ...] = (
    KernelCost(
        "DomainDecompAndSync",
        flops_per_particle=3.9e3,
        bytes_per_particle=7.0e3,
        intensity=0.45,
        neighbor_scaled=False,
        launches=40,
        launch_overhead_s=1.5e-4,
    ),
    KernelCost(
        "FindNeighbors",
        flops_per_particle=9.8e3,
        bytes_per_particle=8.2e3,
        intensity=0.65,
    ),
    KernelCost(
        "XMass",
        flops_per_particle=4.9e3,
        bytes_per_particle=5.5e3,
        intensity=0.60,
    ),
    KernelCost(
        "NormalizationGradh",
        flops_per_particle=4.9e3,
        bytes_per_particle=5.5e3,
        intensity=0.60,
    ),
    KernelCost(
        "EquationOfState",
        flops_per_particle=8.2e2,
        bytes_per_particle=1.1e3,
        intensity=0.42,
        neighbor_scaled=False,
    ),
    KernelCost(
        "IADVelocityDivCurl",
        flops_per_particle=8.2e4,
        bytes_per_particle=6.5e3,
        intensity=0.92,
    ),
    KernelCost(
        "MomentumEnergy",
        flops_per_particle=1.60e5,
        bytes_per_particle=5.5e3,
        intensity=1.00,
    ),
    KernelCost(
        "Timestep",
        flops_per_particle=1.6e3,
        bytes_per_particle=2.2e3,
        intensity=0.45,
        neighbor_scaled=False,
    ),
    KernelCost(
        "UpdateQuantities",
        flops_per_particle=3.0e3,
        bytes_per_particle=4.0e3,
        intensity=0.50,
        neighbor_scaled=False,
    ),
)

#: Gravity (Evrard workload only), inserted before MomentumEnergy.
GRAVITY_COST = KernelCost(
    "Gravity",
    flops_per_particle=9.5e4,
    bytes_per_particle=6.0e3,
    intensity=0.95,
    neighbor_scaled=False,
)

#: Device bytes one particle occupies (field arrays + tree + halos).
BYTES_PER_PARTICLE_RESIDENT = 400.0


def max_particles_per_gpu(memory_bytes: float) -> int:
    """Memory cap on particles per GPU (why miniHPC tops out at 450³)."""
    return int(memory_bytes / BYTES_PER_PARTICLE_RESIDENT)


def function_names(with_gravity: bool = False) -> List[str]:
    """Execution-ordered step function names."""
    names = [c.function for c in SPH_FUNCTION_COSTS]
    if with_gravity:
        names.insert(names.index("MomentumEnergy"), "Gravity")
    return names


class WorkloadModel:
    """Generates per-step kernel launches for one rank.

    Parameters
    ----------
    n_particles:
        Local (per-rank) particle count.
    mean_neighbors:
        Average neighbors per particle (updates per step in numeric
        mode; constant at the reference value in model mode).
    with_gravity:
        Include the Gravity function (Evrard workload).
    """

    def __init__(
        self,
        n_particles: float,
        mean_neighbors: float = REFERENCE_NEIGHBORS,
        with_gravity: bool = False,
    ) -> None:
        if n_particles <= 0:
            raise ValueError("n_particles must be positive")
        if mean_neighbors <= 0:
            raise ValueError("mean_neighbors must be positive")
        self.n_particles = float(n_particles)
        self.mean_neighbors = float(mean_neighbors)
        self.with_gravity = with_gravity
        costs = list(SPH_FUNCTION_COSTS)
        if with_gravity:
            idx = [c.function for c in costs].index("MomentumEnergy")
            costs.insert(idx, GRAVITY_COST)
        self._costs: Dict[str, KernelCost] = {c.function: c for c in costs}
        self._order = [c.function for c in costs]

    @property
    def order(self) -> List[str]:
        """Execution-ordered function names."""
        return list(self._order)

    def cost(self, function: str) -> KernelCost:
        try:
            return self._costs[function]
        except KeyError:
            raise KeyError(f"unknown step function {function!r}") from None

    @property
    def utilization(self) -> float:
        """Device utilization fraction implied by the local problem size."""
        return min(self.n_particles / FULL_UTILIZATION_PARTICLES, 1.0)

    def launches_for(self, function: str) -> List[KernelLaunch]:
        """The kernel launches one rank submits for ``function``."""
        cost = self.cost(function)
        scale = (
            self.mean_neighbors / REFERENCE_NEIGHBORS
            if cost.neighbor_scaled
            else 1.0
        )
        flops = cost.flops_per_particle * self.n_particles * scale
        nbytes = cost.bytes_per_particle * self.n_particles * scale

        u = self.utilization
        if u < 1.0:
            # Under-utilization: with too few thread blocks to fill the
            # device, kernels become memory-latency bound — a fraction
            # of the compute work's time stops scaling with the core
            # clock (it waits on memory latency instead). Down-clocking
            # then costs little time while still cutting power, which
            # deepens the EDP win for small problems (Fig. 6, 200^3).
            shift = OVERHEAD_SHIFT * (1.0 - u)
            moved_flops = flops * shift
            flops -= moved_flops
            nbytes += moved_flops / _REF_FLOPS * _REF_BW

        intensity = cost.intensity * (
            MIN_INTENSITY_FRACTION + (1.0 - MIN_INTENSITY_FRACTION) * u
        )
        per_launch = 1.0 / cost.launches
        return [
            KernelLaunch(
                name=function,
                flops=flops * per_launch,
                bytes_moved=nbytes * per_launch,
                power_intensity=min(intensity, 1.0),
                launch_overhead=cost.launch_overhead_s,
            )
            for _ in range(cost.launches)
        ]

    def with_neighbors(self, mean_neighbors: float) -> "WorkloadModel":
        """Copy with an updated neighbor count (numeric-mode feedback)."""
        return WorkloadModel(
            self.n_particles, mean_neighbors, self.with_gravity
        )

    def with_particles(self, n_particles: float) -> "WorkloadModel":
        """Copy with an updated local particle count."""
        return WorkloadModel(
            n_particles, self.mean_neighbors, self.with_gravity
        )
