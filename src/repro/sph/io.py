"""Checkpoint / restart I/O for particle data.

Long astrophysics campaigns run in restart chains; the library supports
that with compressed NumPy archives carrying the full particle state
(primary + any computed derived fields) plus simulation metadata
(step index, physical time, last dt). Round-trips are bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Optional

import numpy as np

from .particles import ParticleSet

#: Format marker stored in every checkpoint.
CHECKPOINT_FORMAT = "repro-sph-checkpoint-v1"


@dataclass(frozen=True)
class CheckpointMeta:
    """Simulation metadata carried alongside the particle arrays."""

    step: int = 0
    physical_time: float = 0.0
    last_dt: float = 0.0
    workload: str = ""


def save_checkpoint(
    path: str,
    particles: ParticleSet,
    meta: CheckpointMeta = CheckpointMeta(),
) -> None:
    """Write particles + metadata as a compressed ``.npz`` archive.

    Derived fields that have not been computed (``None``) are skipped
    and come back as ``None`` on load.
    """
    arrays: Dict[str, np.ndarray] = {}
    for f in dataclass_fields(particles):
        arr = getattr(particles, f.name)
        if arr is not None:
            arrays[f"field_{f.name}"] = arr
    arrays["meta_format"] = np.array(CHECKPOINT_FORMAT)
    arrays["meta_step"] = np.array(meta.step, dtype=np.int64)
    arrays["meta_physical_time"] = np.array(meta.physical_time)
    arrays["meta_last_dt"] = np.array(meta.last_dt)
    arrays["meta_workload"] = np.array(meta.workload)
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: str) -> "tuple[ParticleSet, CheckpointMeta]":
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        fmt = str(data["meta_format"])
        if fmt != CHECKPOINT_FORMAT:
            raise ValueError(
                f"not a repro checkpoint (format {fmt!r}, "
                f"expected {CHECKPOINT_FORMAT!r})"
            )
        kwargs = {}
        for f in dataclass_fields(ParticleSet):
            key = f"field_{f.name}"
            kwargs[f.name] = np.copy(data[key]) if key in data else None
        meta = CheckpointMeta(
            step=int(data["meta_step"]),
            physical_time=float(data["meta_physical_time"]),
            last_dt=float(data["meta_last_dt"]),
            workload=str(data["meta_workload"]),
        )
    return ParticleSet(**kwargs), meta
