"""Exact Riemann solver for the 1-D Euler equations (Toro, ch. 4).

Reference solution for the Sod shock-tube validation: given left/right
states (rho, u, p) and gamma, solve for the star-region pressure and
velocity with Newton iteration, then sample the self-similar solution
at ``xi = (x - x0) / t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GasState:
    """Primitive state (density, velocity, pressure)."""

    rho: float
    u: float
    p: float

    def sound_speed(self, gamma: float) -> float:
        if self.rho <= 0 or self.p < 0:
            raise ValueError("state must have positive density and pressure")
        return float(np.sqrt(gamma * self.p / self.rho))


def _pressure_function(p, state: GasState, gamma: float):
    """f(p) and f'(p) for one side (shock or rarefaction branch)."""
    a = state.sound_speed(gamma)
    if p > state.p:  # shock
        big_a = 2.0 / ((gamma + 1.0) * state.rho)
        big_b = (gamma - 1.0) / (gamma + 1.0) * state.p
        sqrt_term = np.sqrt(big_a / (p + big_b))
        f = (p - state.p) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - state.p) / (p + big_b))
    else:  # rarefaction
        exponent = (gamma - 1.0) / (2.0 * gamma)
        f = (
            2.0 * a / (gamma - 1.0)
            * ((p / state.p) ** exponent - 1.0)
        )
        df = (1.0 / (state.rho * a)) * (p / state.p) ** (-(gamma + 1.0) / (2.0 * gamma))
    return f, df


def solve_star_region(
    left: GasState, right: GasState, gamma: float = 5.0 / 3.0,
    tol: float = 1e-10, max_iter: int = 100,
) -> "tuple[float, float]":
    """Star-region pressure and velocity (p*, u*)."""
    # Initial guess: two-rarefaction approximation.
    a_l = left.sound_speed(gamma)
    a_r = right.sound_speed(gamma)
    z = (gamma - 1.0) / (2.0 * gamma)
    p_guess = (
        (a_l + a_r - 0.5 * (gamma - 1.0) * (right.u - left.u))
        / (a_l / left.p**z + a_r / right.p**z)
    ) ** (1.0 / z)
    p = max(p_guess, 1e-8)
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        delta = (f_l + f_r + (right.u - left.u)) / (df_l + df_r)
        p_new = max(p - delta, 1e-10)
        if abs(p_new - p) < tol * 0.5 * (p_new + p):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, gamma)
    f_r, _ = _pressure_function(p, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return float(p), float(u_star)


def sample_solution(
    xi: np.ndarray,
    left: GasState,
    right: GasState,
    gamma: float = 5.0 / 3.0,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Primitive (rho, u, p) profiles at similarity coordinates ``xi``.

    ``xi = (x - x_diaphragm) / t``.
    """
    xi = np.asarray(xi, dtype=np.float64)
    p_star, u_star = solve_star_region(left, right, gamma)
    a_l = left.sound_speed(gamma)
    a_r = right.sound_speed(gamma)
    gm1, gp1 = gamma - 1.0, gamma + 1.0

    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    left_side = xi <= u_star
    # --- left of the contact -------------------------------------------------
    if p_star > left.p:  # left shock
        rho_star_l = left.rho * (
            (p_star / left.p + gm1 / gp1) / (gm1 / gp1 * p_star / left.p + 1.0)
        )
        s_l = left.u - a_l * np.sqrt(
            gp1 / (2 * gamma) * p_star / left.p + gm1 / (2 * gamma)
        )
        pre = left_side & (xi < s_l)
        post = left_side & (xi >= s_l)
        rho[pre], u[pre], p[pre] = left.rho, left.u, left.p
        rho[post], u[post], p[post] = rho_star_l, u_star, p_star
    else:  # left rarefaction
        rho_star_l = left.rho * (p_star / left.p) ** (1.0 / gamma)
        a_star_l = a_l * (p_star / left.p) ** (gm1 / (2 * gamma))
        head = left.u - a_l
        tail = u_star - a_star_l
        pre = left_side & (xi < head)
        fan = left_side & (xi >= head) & (xi <= tail)
        post = left_side & (xi > tail)
        rho[pre], u[pre], p[pre] = left.rho, left.u, left.p
        u[fan] = 2.0 / gp1 * (a_l + 0.5 * gm1 * left.u + xi[fan])
        a_fan = a_l - 0.5 * gm1 * (u[fan] - left.u)
        rho[fan] = left.rho * (a_fan / a_l) ** (2.0 / gm1)
        p[fan] = left.p * (a_fan / a_l) ** (2.0 * gamma / gm1)
        rho[post], u[post], p[post] = rho_star_l, u_star, p_star

    right_side = ~left_side
    # --- right of the contact ---------------------------------------------
    if p_star > right.p:  # right shock
        rho_star_r = right.rho * (
            (p_star / right.p + gm1 / gp1)
            / (gm1 / gp1 * p_star / right.p + 1.0)
        )
        s_r = right.u + a_r * np.sqrt(
            gp1 / (2 * gamma) * p_star / right.p + gm1 / (2 * gamma)
        )
        post = right_side & (xi <= s_r)
        pre = right_side & (xi > s_r)
        rho[post], u[post], p[post] = rho_star_r, u_star, p_star
        rho[pre], u[pre], p[pre] = right.rho, right.u, right.p
    else:  # right rarefaction
        rho_star_r = right.rho * (p_star / right.p) ** (1.0 / gamma)
        a_star_r = a_r * (p_star / right.p) ** (gm1 / (2 * gamma))
        head = right.u + a_r
        tail = u_star + a_star_r
        post = right_side & (xi < tail)
        fan = right_side & (xi >= tail) & (xi <= head)
        pre = right_side & (xi > head)
        rho[post], u[post], p[post] = rho_star_r, u_star, p_star
        u[fan] = 2.0 / gp1 * (-a_r + 0.5 * gm1 * right.u + xi[fan])
        a_fan = a_r + 0.5 * gm1 * (u[fan] - right.u)
        rho[fan] = right.rho * (a_fan / a_r) ** (2.0 / gm1)
        p[fan] = right.p * (a_fan / a_r) ** (2.0 * gamma / gm1)
        rho[pre], u[pre], p[pre] = right.rho, right.u, right.p

    return rho, u, p
