"""Equations of state (the EquationOfState step function's numerics)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .particles import ParticleSet


@dataclass(frozen=True)
class IdealGasEOS:
    """Ideal gas: p = (gamma - 1) rho u, c = sqrt(gamma p / rho)."""

    gamma: float = 5.0 / 3.0

    def apply(self, particles: ParticleSet) -> None:
        """Fill ``p`` and ``c`` from ``rho`` and ``u`` in place."""
        if particles.rho is None:
            raise ValueError("density must be computed before the EOS")
        particles.ensure_derived()
        rho = particles.rho
        u = np.maximum(particles.u, 1e-300)
        particles.p = (self.gamma - 1.0) * rho * u
        particles.c = np.sqrt(self.gamma * particles.p / np.maximum(rho, 1e-300))


@dataclass(frozen=True)
class IsothermalEOS:
    """Isothermal gas: p = c0^2 rho with a constant sound speed.

    Used for the subsonic turbulence workload, where the Mach number is
    defined against a fixed sound speed.
    """

    sound_speed: float = 1.0

    def apply(self, particles: ParticleSet) -> None:
        """Fill ``p`` and ``c`` from ``rho`` in place."""
        if particles.rho is None:
            raise ValueError("density must be computed before the EOS")
        particles.ensure_derived()
        particles.p = self.sound_speed**2 * particles.rho
        particles.c = np.full(particles.n, self.sound_speed)
