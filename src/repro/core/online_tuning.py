"""Online per-function frequency tuning (extension of §III-C/D).

The paper finds per-kernel sweet spots *offline* with KernelTuner and
bakes them into the ManDyn instrumentation. This extension removes the
offline pass: during the first steps of a production run, the policy
explores a small set of candidate clocks per function, measuring each
function's time and GPU energy through the same hooks the profiler
uses, then pins every function to its best-EDP clock for the rest of
the run. Exploration costs a bounded number of steps; convergence is
deterministic.

This is exactly the "the developer has prior knowledge" loop of the
paper turned into a measurement loop — useful when a new simulation
code (or a new GPU, cf. §V) has no tuning data yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hardware.gpu import SimulatedGpu
from .freq_policy import FrequencyPolicy


@dataclass
class _Observation:
    time_s: float = 0.0
    energy_j: float = 0.0
    calls: int = 0

    @property
    def edp(self) -> float:
        return self.time_s * self.energy_j


class OnlineTuningPolicy(FrequencyPolicy):
    """Explore candidate clocks per function, then exploit the best.

    Parameters
    ----------
    candidates_mhz:
        Clocks to try per function, e.g. ``(1410, 1200, 1005)``.
    rounds_per_candidate:
        Function invocations measured per candidate before moving on.

    The policy is also a hook: register it (before the profiler) so it
    can measure the function windows itself.
    """

    name = "AutoDyn"

    def __init__(
        self,
        gpus: Sequence[SimulatedGpu],
        candidates_mhz: Sequence[float] = (1410.0, 1305.0, 1200.0, 1110.0, 1005.0),
        rounds_per_candidate: int = 2,
    ) -> None:
        if not candidates_mhz:
            raise ValueError("need at least one candidate clock")
        if rounds_per_candidate < 1:
            raise ValueError("need at least one round per candidate")
        self._gpus = list(gpus)
        self.candidates = [float(c) for c in candidates_mhz]
        self.rounds = rounds_per_candidate
        self._observations: Dict[str, List[_Observation]] = {}
        self._progress: Dict[str, int] = {}
        self.converged_map: Dict[str, float] = {}
        self._open: Dict[tuple, tuple] = {}

    # -- FrequencyPolicy interface -------------------------------------------

    def initial_mode(self) -> Optional[float]:
        return max(self.candidates)

    def frequency_for(self, function: str) -> Optional[float]:
        if function in self.converged_map:
            return self.converged_map[function]
        idx = self._candidate_index(function)
        return self.candidates[idx]

    # -- hook interface (measurement) -----------------------------------------

    def before_function(self, function: str, rank: int) -> None:
        gpu = self._gpus[rank]
        self._open[(function, rank)] = (gpu.clock.now, gpu.energy_j)

    def after_function(self, function: str, rank: int) -> None:
        key = (function, rank)
        if key not in self._open:
            return
        t0, e0 = self._open.pop(key)
        if function in self.converged_map:
            return
        gpu = self._gpus[rank]
        obs_list = self._observations.setdefault(
            function, [_Observation() for _ in self.candidates]
        )
        idx = self._candidate_index(function)
        obs = obs_list[idx]
        obs.time_s += gpu.clock.now - t0
        obs.energy_j += gpu.energy_j - e0
        obs.calls += 1
        # Only rank 0 drives progression (all ranks run the same work).
        if rank == 0:
            self._progress[function] = self._progress.get(function, 0) + 1
            total_needed = self.rounds * len(self.candidates)
            if self._progress[function] >= total_needed:
                self._converge(function)

    # -- checkpoint ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """Exploration progress (valid between functions: ``_open`` empty)."""
        return {
            "observations": {
                fn: [
                    {"time_s": o.time_s, "energy_j": o.energy_j, "calls": o.calls}
                    for o in obs_list
                ]
                for fn, obs_list in self._observations.items()
            },
            "progress": dict(self._progress),
            "converged_map": dict(self.converged_map),
        }

    def restore_state(self, state: dict) -> None:
        self._observations = {
            fn: [
                _Observation(
                    time_s=float(o["time_s"]),
                    energy_j=float(o["energy_j"]),
                    calls=int(o["calls"]),
                )
                for o in obs_list
            ]
            for fn, obs_list in state["observations"].items()
        }
        self._progress = {
            fn: int(n) for fn, n in state["progress"].items()
        }
        self.converged_map = {
            fn: float(mhz) for fn, mhz in state["converged_map"].items()
        }
        self._open = {}

    # -- internals ---------------------------------------------------------------

    def _candidate_index(self, function: str) -> int:
        done = self._progress.get(function, 0)
        return min(done // self.rounds, len(self.candidates) - 1)

    def _converge(self, function: str) -> None:
        observations = self._observations[function]
        best_idx = min(
            range(len(self.candidates)),
            key=lambda i: observations[i].edp / max(observations[i].calls, 1) ** 2,
        )
        self.converged_map[function] = self.candidates[best_idx]

    @property
    def fully_converged(self) -> bool:
        """True once every observed function has a pinned clock."""
        return bool(self._observations) and all(
            fn in self.converged_map for fn in self._observations
        )

    def exploration_steps(self) -> int:
        """Steps needed before every function is converged."""
        return self.rounds * len(self.candidates)
