"""Energy-delay product and normalized efficiency metrics (§IV-C)."""

from __future__ import annotations

from dataclasses import dataclass


def energy_delay_product(energy_j: float, time_s: float) -> float:
    """EDP = energy * time (J*s). Lower is better."""
    if energy_j < 0 or time_s < 0:
        raise ValueError("energy and time must be non-negative")
    return energy_j * time_s


@dataclass(frozen=True)
class Metrics:
    """Time-to-solution, energy-to-solution and their product."""

    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return energy_delay_product(self.energy_j, self.time_s)

    def normalized_to(self, baseline: "Metrics") -> "NormalizedMetrics":
        """Ratios against a baseline run (1.0 = identical)."""
        if baseline.time_s <= 0 or baseline.energy_j <= 0:
            raise ValueError("baseline must have positive time and energy")
        return NormalizedMetrics(
            time=self.time_s / baseline.time_s,
            energy=self.energy_j / baseline.energy_j,
            edp=self.edp / baseline.edp,
        )


@dataclass(frozen=True)
class NormalizedMetrics:
    """Ratios vs. a baseline, as plotted in Figs. 6-8."""

    time: float
    energy: float
    edp: float

    def __str__(self) -> str:
        return (
            f"time x{self.time:.4f}, energy x{self.energy:.4f}, "
            f"EDP x{self.edp:.4f}"
        )
