"""Compare two gathered energy reports (A/B runs of the same workload).

The paper's workflow is inherently comparative — baseline vs ManDyn,
clock A vs clock B. This helper diffs two saved
:class:`~repro.core.energy.EnergyReport` files per function and per
device class, producing exactly the normalized quantities Figs. 7-8
plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .analysis import per_function_metrics, run_metrics
from .energy import DEVICE_CLASSES, EnergyReport


@dataclass(frozen=True)
class FunctionDiff:
    """Normalized change of one function between two runs (B / A)."""

    function: str
    time_ratio: float
    gpu_energy_ratio: float

    @property
    def edp_ratio(self) -> float:
        return self.time_ratio * self.gpu_energy_ratio


@dataclass(frozen=True)
class ReportDiff:
    """Whole-run and per-function comparison of run B against run A."""

    time_ratio: float
    total_energy_ratio: float
    gpu_energy_ratio: float
    device_ratios: Dict[str, float]
    functions: List[FunctionDiff]

    @property
    def edp_ratio(self) -> float:
        return self.time_ratio * self.gpu_energy_ratio


def diff_reports(a: EnergyReport, b: EnergyReport) -> ReportDiff:
    """Normalized comparison of run ``b`` against baseline ``a``.

    Functions present in only one report are skipped (different
    workloads are not meaningfully diffable function-by-function).
    """
    metrics_a = run_metrics(a)
    metrics_b = run_metrics(b)
    gpu_a = run_metrics(a, gpu_only=True)
    gpu_b = run_metrics(b, gpu_only=True)
    if metrics_a.time_s <= 0 or metrics_a.energy_j <= 0:
        raise ValueError("baseline report has no measured window")

    dev_a = a.total_device_j()
    dev_b = b.total_device_j()
    device_ratios = {
        d: (dev_b[d] / dev_a[d]) if dev_a[d] > 0 else float("nan")
        for d in DEVICE_CLASSES
    }

    fns_a = per_function_metrics(a)
    fns_b = per_function_metrics(b)
    functions = []
    for fn in sorted(set(fns_a) & set(fns_b)):
        ma, mb = fns_a[fn], fns_b[fn]
        if ma.time_s <= 0 or ma.energy_j <= 0:
            continue
        functions.append(
            FunctionDiff(
                function=fn,
                time_ratio=mb.time_s / ma.time_s,
                gpu_energy_ratio=mb.energy_j / ma.energy_j,
            )
        )
    functions.sort(key=lambda d: d.edp_ratio)

    return ReportDiff(
        time_ratio=metrics_b.time_s / metrics_a.time_s,
        total_energy_ratio=metrics_b.energy_j / metrics_a.energy_j,
        gpu_energy_ratio=gpu_b.energy_j / gpu_a.energy_j,
        device_ratios=device_ratios,
        functions=functions,
    )
