"""GPU frequency-scaling strategies (§III-D, §IV-C/D).

Three strategies are compared in the paper's Fig. 7:

* **static** — pin the application clocks to one value for the whole
  run (what Slurm's ``--gpu-freq`` or the centre's defaults do);
* **dvfs** — reset application clocks and let the device's governor
  manage frequency;
* **ManDyn** — the paper's contribution: before each instrumented
  function, set the application clocks to that function's sweet-spot
  frequency (discovered offline with the kernel tuner, Fig. 2).
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional


class FrequencyPolicy(abc.ABC):
    """Decides the GPU application clock around each step function."""

    #: Short name used in reports and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def initial_mode(self) -> Optional[float]:
        """Clock to pin at run start, MHz; ``None`` means DVFS-governed."""

    def frequency_for(self, function: str) -> Optional[float]:
        """Clock to pin before ``function``, MHz; ``None`` = leave as is."""
        return None

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable policy state; stateless policies return ``{}``."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` (no-op for stateless policies)."""
        return None


class StaticFrequencyPolicy(FrequencyPolicy):
    """Whole-run pinned application clocks."""

    def __init__(self, freq_mhz: float) -> None:
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive")
        self.freq_mhz = float(freq_mhz)
        self.name = f"static-{freq_mhz:.0f}MHz"

    def initial_mode(self) -> Optional[float]:
        return self.freq_mhz


class DvfsPolicy(FrequencyPolicy):
    """Hand the device to its built-in DVFS governor for the whole run."""

    name = "dvfs"

    def initial_mode(self) -> Optional[float]:
        return None


class ManDynPolicy(FrequencyPolicy):
    """Per-function application clocks through code instrumentation.

    ``freq_map`` maps function names to MHz; unmapped functions run at
    ``default_mhz`` (the device maximum in the paper's experiments).
    """

    name = "ManDyn"

    def __init__(
        self, freq_map: Mapping[str, float], default_mhz: float
    ) -> None:
        if default_mhz <= 0:
            raise ValueError("default frequency must be positive")
        for fn, mhz_value in freq_map.items():
            if mhz_value <= 0:
                raise ValueError(f"non-positive frequency for {fn!r}")
        self.freq_map: Dict[str, float] = dict(freq_map)
        self.default_mhz = float(default_mhz)

    def initial_mode(self) -> Optional[float]:
        return self.default_mhz

    def frequency_for(self, function: str) -> Optional[float]:
        return self.freq_map.get(function, self.default_mhz)

    @staticmethod
    def from_tuning(
        best_freq_mhz: Mapping[str, float], default_mhz: float
    ) -> "ManDynPolicy":
        """Build the policy straight from kernel-tuner output (Fig. 2)."""
        return ManDynPolicy(freq_map=best_freq_mhz, default_mhz=default_mhz)


def baseline_policy(max_freq_mhz: float) -> StaticFrequencyPolicy:
    """The paper's baseline: application clocks pinned at the maximum."""
    policy = StaticFrequencyPolicy(max_freq_mhz)
    policy.name = "baseline"
    return policy
