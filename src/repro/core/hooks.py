"""SPH-EXA-style profiling hooks.

SPH-EXA exposes hook points around every function of the time-stepping
loop, normally used for timing (§III-B). The paper plugs two things
into them: energy measurement (PMT / pm_counters readers) and the
GPU-frequency controller (NVML application-clock calls before each
computational kernel). This registry reproduces that mechanism: any
number of observers receive ``before(function, rank)`` /
``after(function, rank)`` callbacks, and the simulation core fires them
around every named step function.
"""

from __future__ import annotations

from typing import List, Protocol


class FunctionHook(Protocol):
    """Observer of step-function boundaries on one rank."""

    def before_function(self, function: str, rank: int) -> None:
        """Called immediately before ``function`` starts on ``rank``."""

    def after_function(self, function: str, rank: int) -> None:
        """Called immediately after ``function`` completes on ``rank``."""


class HookRegistry:
    """Ordered collection of function hooks.

    ``before`` callbacks fire in registration order, ``after`` in
    reverse order (so wrapping hooks nest correctly: the frequency
    controller registered first acts outside the energy profiler).
    """

    def __init__(self) -> None:
        self._hooks: List[FunctionHook] = []

    def register(self, hook: FunctionHook) -> None:
        if hook in self._hooks:
            raise ValueError("hook already registered")
        self._hooks.append(hook)

    def __len__(self) -> int:
        """Number of registered hooks (observability cost accounting)."""
        return len(self._hooks)

    def __contains__(self, hook: object) -> bool:
        return hook in self._hooks

    def unregister(self, hook: FunctionHook) -> None:
        try:
            self._hooks.remove(hook)
        except ValueError:
            raise ValueError("hook was not registered") from None

    @property
    def hooks(self) -> List[FunctionHook]:
        return list(self._hooks)

    def fire_before(self, function: str, rank: int) -> None:
        for hook in self._hooks:
            hook.before_function(function, rank)

    def fire_after(self, function: str, rank: int) -> None:
        for hook in reversed(self._hooks):
            hook.after_function(function, rank)
