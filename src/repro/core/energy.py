"""Per-rank, per-function, per-device energy measurement (§III-B).

The :class:`EnergyProfiler` is a :class:`~repro.core.hooks.FunctionHook`
that measures, per MPI rank and per instrumented function, wall time and
energy broken down by device class (GPU / CPU / Memory / Other). As in
the paper:

* measurements happen *per rank* during the run and are only gathered
  (and written to a report file) at the end, to avoid perturbing the
  simulation;
* GPU energy comes from the device counters (NVML semantics). On
  MI250X systems the sensors are per *card*, shared by two ranks
  (GCDs); :class:`CardShareGpuSource` divides the card counter between
  the sharing ranks, which is the rank-to-GPU-assignment-aware analysis
  of §III-B and carries the small inaccuracy acknowledged in §IV-A;
* CPU / Memory / Other energy is attributed to a function proportional
  to its wall time and the per-rank share of the node-level draw —
  the paper's observation that CPU energy tracks function duration
  (§IV-B).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from ..hardware.gpu import SimulatedGpu
from ..hardware.node import ComputeNode

#: Device classes in reporting order (Fig. 4 legend).
DEVICE_CLASSES = ("GPU", "CPU", "Memory", "Other")


class GpuEnergySource:
    """Per-rank GPU energy reader with exact per-device counters."""

    card_level = False

    def __init__(self, gpu: SimulatedGpu) -> None:
        self._gpu = gpu

    def read_j(self) -> float:
        return self._gpu.energy_j


class CardShareGpuSource:
    """Per-rank GPU energy via a shared card-level counter (MI250X).

    The counter sums both GCDs of the card; each of the ``n_sharing``
    ranks is attributed an equal share. Exact when the sharing ranks do
    identical work, slightly wrong otherwise — the §IV-A caveat.
    """

    card_level = True

    def __init__(self, node: ComputeNode, card: int, n_sharing: int) -> None:
        if n_sharing < 1:
            raise ValueError("n_sharing must be at least 1")
        self._node = node
        self._card = card
        self._n_sharing = n_sharing

    def read_j(self) -> float:
        return self._node.accel_energy_j(self._card) / self._n_sharing


@dataclass
class FunctionEnergyRecord:
    """Accumulated measurements of one function on one rank."""

    function: str
    calls: int = 0
    time_s: float = 0.0
    device_j: Dict[str, float] = field(
        default_factory=lambda: {d: 0.0 for d in DEVICE_CLASSES}
    )

    @property
    def total_j(self) -> float:
        return sum(self.device_j.values())

    @property
    def gpu_j(self) -> float:
        return self.device_j["GPU"]

    def merge(self, other: "FunctionEnergyRecord") -> None:
        if other.function != self.function:
            raise ValueError("cannot merge records of different functions")
        self.calls += other.calls
        self.time_s += other.time_s
        for dev in DEVICE_CLASSES:
            self.device_j[dev] += other.device_j[dev]


@dataclass
class RankEnergyReport:
    """Everything one rank measured over the instrumented window."""

    rank: int
    records: Dict[str, FunctionEnergyRecord] = field(default_factory=dict)
    window_start_s: Optional[float] = None
    window_end_s: Optional[float] = None
    window_gpu_j: float = 0.0
    #: True when this rank's frequency-control circuit breaker tripped
    #: and the device finished the run under its DVFS governor.
    degraded: bool = False
    #: Human-readable reason for the degradation, when degraded.
    degraded_reason: Optional[str] = None

    @property
    def window_time_s(self) -> float:
        if self.window_start_s is None or self.window_end_s is None:
            raise RuntimeError("instrumented window was not closed")
        return self.window_end_s - self.window_start_s

    def total_device_j(self) -> Dict[str, float]:
        totals = {d: 0.0 for d in DEVICE_CLASSES}
        for rec in self.records.values():
            for dev in DEVICE_CLASSES:
                totals[dev] += rec.device_j[dev]
        return totals


class EnergyProfiler:
    """Hook measuring per-function time and per-device energy per rank.

    Parameters
    ----------
    gpu_sources:
        One GPU energy reader per rank.
    clocks:
        One rank-local clock per rank (for wall time).
    node_of_rank / nodes:
        Topology for the analytic CPU/Memory/Other attribution.
    """

    def __init__(
        self,
        gpu_sources: List[GpuEnergySource],
        clocks: List,
        nodes: List[ComputeNode],
        node_of_rank: List[int],
    ) -> None:
        n = len(gpu_sources)
        if not (len(clocks) == len(node_of_rank) == n):
            raise ValueError("per-rank inputs must align")
        self._sources = gpu_sources
        self._clocks = clocks
        self._nodes = nodes
        self._node_of_rank = node_of_rank
        self._ranks_per_node = [
            node_of_rank.count(i) for i in range(len(nodes))
        ]
        self.reports: List[RankEnergyReport] = [
            RankEnergyReport(rank=r) for r in range(n)
        ]
        self._open_t: Dict[int, float] = {}
        self._open_gpu_j: Dict[int, float] = {}
        self._open_fn: Dict[int, str] = {}
        self._window_open_gpu_j: List[float] = [0.0] * n
        #: Optional per-step time series: one {function: (time, gpu_j)}
        #: dict per completed step, aggregated over ranks.
        self.timeline: List[Dict[str, "tuple"]] = []
        self._step_acc: Dict[str, List[float]] = {}

    # -- hook interface ------------------------------------------------------

    def before_function(self, function: str, rank: int) -> None:
        if rank in self._open_fn:
            raise RuntimeError(
                f"rank {rank} already measuring {self._open_fn[rank]!r}"
            )
        self._open_fn[rank] = function
        self._open_t[rank] = self._clocks[rank].now
        self._open_gpu_j[rank] = self._sources[rank].read_j()

    def after_function(self, function: str, rank: int) -> None:
        if self._open_fn.get(rank) != function:
            raise RuntimeError(
                f"rank {rank} closing {function!r} but "
                f"{self._open_fn.get(rank)!r} is open"
            )
        del self._open_fn[rank]
        dt = self._clocks[rank].now - self._open_t[rank]
        gpu_j = self._sources[rank].read_j() - self._open_gpu_j[rank]
        node = self._nodes[self._node_of_rank[rank]]
        share = 1.0 / self._ranks_per_node[self._node_of_rank[rank]]
        cpu_j = node.cpu.power_w() * dt * share
        mem_j = node.power_spec.memory_power_w * dt * share
        other_j = node.power_spec.aux_power_w * dt * share

        report = self.reports[rank]
        rec = report.records.setdefault(
            function, FunctionEnergyRecord(function=function)
        )
        rec.calls += 1
        rec.time_s += dt
        rec.device_j["GPU"] += gpu_j
        rec.device_j["CPU"] += cpu_j
        rec.device_j["Memory"] += mem_j
        rec.device_j["Other"] += other_j
        acc = self._step_acc.setdefault(function, [0.0, 0.0])
        acc[0] += dt
        acc[1] += gpu_j

    def mark_step(self) -> None:
        """Close one time-step's timeline record (called per loop step).

        Each record maps ``function -> (summed rank time, GPU joules)``
        for that step, enabling per-step trend analysis (e.g. adaptive
        neighbor counts or decomposition drift showing up as energy
        drift).
        """
        self.timeline.append(
            {fn: (acc[0], acc[1]) for fn, acc in self._step_acc.items()}
        )
        self._step_acc = {}

    # -- instrumented window (PMT starts at the time-stepping loop) ----------

    def open_window(self) -> None:
        """Mark the start of the measured region (main loop entry)."""
        for rank, report in enumerate(self.reports):
            report.window_start_s = self._clocks[rank].now
            self._window_open_gpu_j[rank] = self._sources[rank].read_j()

    def close_window(self) -> None:
        """Mark the end of the measured region (main loop exit)."""
        for rank, report in enumerate(self.reports):
            if report.window_start_s is None:
                raise RuntimeError("window was never opened")
            report.window_end_s = self._clocks[rank].now
            report.window_gpu_j = (
                self._sources[rank].read_j() - self._window_open_gpu_j[rank]
            )

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable state (valid only between functions/steps)."""
        if self._open_fn:
            raise RuntimeError(
                "cannot checkpoint the profiler with open measurements: "
                + ", ".join(sorted(self._open_fn.values()))
            )
        return {
            "reports": EnergyReport(ranks=self.reports).to_dict(),
            "window_open_gpu_j": list(self._window_open_gpu_j),
            "timeline": [
                {fn: [t, j] for fn, (t, j) in step.items()}
                for step in self.timeline
            ],
        }

    def restore_state(self, state: dict) -> None:
        self.reports = EnergyReport.from_dict(state["reports"]).ranks
        self._window_open_gpu_j = [
            float(v) for v in state["window_open_gpu_j"]
        ]
        self.timeline = [
            {fn: (float(pair[0]), float(pair[1])) for fn, pair in step.items()}
            for step in state["timeline"]
        ]
        self._open_t = {}
        self._open_gpu_j = {}
        self._open_fn = {}
        self._step_acc = {}

    # -- gather / persist -----------------------------------------------------

    def gather(self, comm) -> "EnergyReport":
        """End-of-run gather of all rank reports (root keeps them all).

        The communicator's own statistics ride along: per-op call
        counts, bytes moved, total synchronization wait and its
        per-rank breakdown used to die with the communicator when the
        cluster was torn down; now every saved report carries them.
        """
        gathered = comm.gather(self.reports)
        stats = getattr(comm, "stats", None)
        comm_payload = None
        if stats is not None:
            comm_payload = {
                "calls": dict(stats.calls),
                "bytes_moved": stats.bytes_moved,
                "sync_wait_s": stats.sync_wait_s,
                "comm_time_s": stats.comm_time_s,
                "rank_wait_s": list(stats.rank_wait_s),
            }
        return EnergyReport(ranks=list(gathered), comm=comm_payload)


@dataclass
class EnergyReport:
    """Gathered per-rank reports plus aggregation helpers."""

    ranks: List[RankEnergyReport]
    #: Communicator statistics snapshot (per-op calls, bytes moved,
    #: sync waits and their per-rank split), or ``None`` for reports
    #: written before the stats were gathered.
    comm: Optional[Dict] = None

    def aggregate_functions(self) -> Dict[str, FunctionEnergyRecord]:
        """Sum records across ranks, keyed by function name."""
        out: Dict[str, FunctionEnergyRecord] = {}
        for rank_report in self.ranks:
            for name, rec in rank_report.records.items():
                if name in out:
                    out[name].merge(rec)
                else:
                    merged = FunctionEnergyRecord(function=name)
                    merged.merge(rec)
                    out[name] = merged
        return out

    def total_device_j(self) -> Dict[str, float]:
        totals = {d: 0.0 for d in DEVICE_CLASSES}
        for rank_report in self.ranks:
            for dev, j in rank_report.total_device_j().items():
                totals[dev] += j
        return totals

    def total_j(self) -> float:
        return sum(self.total_device_j().values())

    def max_window_time_s(self) -> float:
        """Time-to-solution: the slowest rank's instrumented window."""
        return max(r.window_time_s for r in self.ranks)

    def total_window_gpu_j(self) -> float:
        """GPU energy over the instrumented window, all ranks."""
        return sum(r.window_gpu_j for r in self.ranks)

    def degraded_ranks(self) -> List[int]:
        """Ranks that finished the run degraded to DVFS, ascending."""
        return sorted(r.rank for r in self.ranks if r.degraded)

    def mark_degraded(self, rank: int, reason: str) -> None:
        """Flag one rank's report as degraded (set by the run loop)."""
        for rank_report in self.ranks:
            if rank_report.rank == rank:
                rank_report.degraded = True
                rank_report.degraded_reason = reason
                return
        raise ValueError(f"no rank {rank} in this report")

    # -- persistence (post-hoc analysis files, §III-B) -----------------------

    def to_dict(self) -> Dict:
        """JSON-serializable payload (the :meth:`save` file format).

        Also the wire format campaign workers return results in, so a
        gathered report survives process boundaries losslessly.
        """
        payload: Dict = {
            "ranks": [
                {
                    "rank": r.rank,
                    "window_start_s": r.window_start_s,
                    "window_end_s": r.window_end_s,
                    "window_gpu_j": r.window_gpu_j,
                    "degraded": r.degraded,
                    "degraded_reason": r.degraded_reason,
                    "records": {
                        name: asdict(rec) for name, rec in r.records.items()
                    },
                }
                for r in self.ranks
            ]
        }
        if self.comm is not None:
            payload["comm"] = self.comm
        return payload

    def save(self, path: str) -> None:
        """Write the gathered report as JSON for post-hoc analysis."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @staticmethod
    def from_dict(payload: Dict) -> "EnergyReport":
        """Inverse of :meth:`to_dict`."""
        ranks = []
        for rd in payload["ranks"]:
            records = {}
            for name, rec in rd["records"].items():
                records[name] = FunctionEnergyRecord(
                    function=rec["function"],
                    calls=rec["calls"],
                    time_s=rec["time_s"],
                    device_j=dict(rec["device_j"]),
                )
            ranks.append(
                RankEnergyReport(
                    rank=rd["rank"],
                    records=records,
                    window_start_s=rd["window_start_s"],
                    window_end_s=rd["window_end_s"],
                    window_gpu_j=rd.get("window_gpu_j", 0.0),
                    degraded=rd.get("degraded", False),
                    degraded_reason=rd.get("degraded_reason"),
                )
            )
        return EnergyReport(ranks=ranks, comm=payload.get("comm"))

    @staticmethod
    def load(path: str) -> "EnergyReport":
        """Read a report written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return EnergyReport.from_dict(payload)


def make_gpu_sources(cluster) -> List[GpuEnergySource]:
    """Build the right per-rank GPU energy readers for a cluster.

    Single-GCD cards get exact per-device readers; multi-GCD cards
    (LUMI-G) get card-share readers, reproducing §III-B.
    """
    sources: List[GpuEnergySource] = []
    for rank in range(cluster.n_ranks):
        gpu = cluster.gpu_of_rank(rank)
        gcds = gpu.spec.gcds_per_card
        if gcds == 1:
            sources.append(GpuEnergySource(gpu))
        else:
            node = cluster.node_of(rank)
            sources.append(
                CardShareGpuSource(node, cluster.card_of_rank(rank), gcds)
            )
    return sources


def make_profiler(cluster) -> EnergyProfiler:
    """EnergyProfiler wired to a :class:`~repro.systems.Cluster`."""
    return EnergyProfiler(
        gpu_sources=make_gpu_sources(cluster),
        clocks=cluster.clocks,
        nodes=cluster.nodes,
        node_of_rank=cluster.node_of_rank,
    )
