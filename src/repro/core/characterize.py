"""Two-run kernel characterization: developer knowledge, measured.

The paper argues the developer "has prior knowledge about the
computational kernels, hence can select the best frequency" (§III-B).
This module extracts that knowledge *from measurements*: given the
per-function reports of two runs at different static clocks, it
estimates each function's

* compute-bound fraction ``kappa`` from the time response
  ``t(f2)/t(f1) = 1 + kappa (f1/f2 - 1)``, and
* dynamic-power share from the energy response,

then predicts the whole EDP-vs-frequency curve per function and
recommends the best clock analytically — two production runs replace a
full KernelTuner sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .analysis import per_function_metrics
from .energy import EnergyReport


@dataclass(frozen=True)
class KernelCharacter:
    """Measured frequency response of one function.

    ``kappa`` is the fraction of runtime scaling with the clock;
    ``idle_fraction`` is the share of the function's power at the
    reference clock that does not scale with frequency;
    ``alpha`` is the dynamic-power exponent assumed for prediction.
    """

    function: str
    kappa: float
    idle_fraction: float
    alpha: float
    ref_freq_mhz: float
    ref_time_s: float
    ref_energy_j: float

    def predict_time(self, freq_mhz: float) -> float:
        """Predicted duration at ``freq_mhz``."""
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive")
        return self.ref_time_s * (
            1.0 + self.kappa * (self.ref_freq_mhz / freq_mhz - 1.0)
        )

    def predict_energy(self, freq_mhz: float) -> float:
        """Predicted energy at ``freq_mhz``."""
        ratio = freq_mhz / self.ref_freq_mhz
        power_scale = self.idle_fraction + (
            1.0 - self.idle_fraction
        ) * ratio**self.alpha
        ref_power = self.ref_energy_j / self.ref_time_s
        return ref_power * power_scale * self.predict_time(freq_mhz)

    def predict_edp(self, freq_mhz: float) -> float:
        return self.predict_time(freq_mhz) * self.predict_energy(freq_mhz)

    def best_clock(self, candidates_mhz: Sequence[float]) -> float:
        """Candidate clock minimizing the predicted EDP."""
        if not candidates_mhz:
            raise ValueError("need candidate clocks")
        return min(candidates_mhz, key=self.predict_edp)


def characterize_functions(
    report_ref: EnergyReport,
    report_low: EnergyReport,
    freq_ref_mhz: float,
    freq_low_mhz: float,
    alpha: float = 1.7,
) -> Dict[str, KernelCharacter]:
    """Fit per-function characters from two static-clock runs.

    ``report_ref`` must be the higher-clock run. Estimates are clamped
    to physical ranges ([0, 1] for kappa and the idle fraction).
    """
    if freq_low_mhz >= freq_ref_mhz:
        raise ValueError("the second run must use a lower clock")
    m_ref = per_function_metrics(report_ref)
    m_low = per_function_metrics(report_low)
    ratio = freq_ref_mhz / freq_low_mhz
    out: Dict[str, KernelCharacter] = {}
    for fn in m_ref:
        if fn not in m_low:
            continue
        t1, e1 = m_ref[fn].time_s, m_ref[fn].energy_j
        t2, e2 = m_low[fn].time_s, m_low[fn].energy_j
        if t1 <= 0 or e1 <= 0:
            continue
        kappa = (t2 / t1 - 1.0) / (ratio - 1.0)
        kappa = min(max(kappa, 0.0), 1.0)
        # Power scale at the low clock from the energy/time responses:
        # P2/P1 = idle + (1 - idle) (f2/f1)^alpha.
        p_scale = (e2 / e1) / (t2 / t1)
        f_term = (freq_low_mhz / freq_ref_mhz) ** alpha
        idle = (p_scale - f_term) / (1.0 - f_term)
        idle = min(max(idle, 0.0), 1.0)
        out[fn] = KernelCharacter(
            function=fn,
            kappa=kappa,
            idle_fraction=idle,
            alpha=alpha,
            ref_freq_mhz=freq_ref_mhz,
            ref_time_s=t1,
            ref_energy_j=e1,
        )
    return out


def recommend_frequencies(
    characters: Dict[str, KernelCharacter],
    candidates_mhz: Sequence[float],
) -> Dict[str, float]:
    """Per-function best-EDP clocks from the fitted characters.

    The output plugs straight into
    :meth:`repro.core.ManDynPolicy.from_tuning`.
    """
    return {
        fn: ch.best_clock(candidates_mhz) for fn, ch in characters.items()
    }
