"""Post-hoc analysis of gathered energy reports (§III-B, Figs. 4-5).

The paper's analysis scripts take the system's hardware configuration
and MPI rank-to-GPU assignment into account when turning raw counter
readings into per-device and per-function breakdowns. These helpers do
the same over :class:`~repro.core.energy.EnergyReport` objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..units import megajoules
from .edp import Metrics
from .energy import DEVICE_CLASSES, EnergyReport, FunctionEnergyRecord


def device_breakdown_percent(report: EnergyReport) -> Dict[str, float]:
    """Share of total energy per device class, percent (Fig. 4)."""
    totals = report.total_device_j()
    total = sum(totals.values())
    if total <= 0:
        return {d: 0.0 for d in DEVICE_CLASSES}
    return {d: 100.0 * totals[d] / total for d in DEVICE_CLASSES}


def device_breakdown_mj(report: EnergyReport) -> Dict[str, float]:
    """Per-device energy in megajoules."""
    return {d: megajoules(j) for d, j in report.total_device_j().items()}


def function_share_percent(
    report: EnergyReport, device: str = "GPU"
) -> Dict[str, float]:
    """Per-function share of one device's energy, percent (Fig. 5)."""
    if device not in DEVICE_CLASSES:
        raise ValueError(f"unknown device class {device!r}")
    functions = report.aggregate_functions()
    total = sum(rec.device_j[device] for rec in functions.values())
    if total <= 0:
        return {name: 0.0 for name in functions}
    return {
        name: 100.0 * rec.device_j[device] / total
        for name, rec in functions.items()
    }


def top_functions(
    report: EnergyReport, k: int = 5, device: Optional[str] = None
) -> List[Tuple[str, FunctionEnergyRecord]]:
    """The k most energy-hungry functions (total or one device class)."""
    functions = report.aggregate_functions()

    def key(item):
        _, rec = item
        return rec.device_j[device] if device else rec.total_j

    return sorted(functions.items(), key=key, reverse=True)[:k]


def run_metrics(report: EnergyReport, gpu_only: bool = False) -> Metrics:
    """Time-to-solution and energy-to-solution of a gathered run.

    ``gpu_only=True`` restricts energy to the GPUs — the basis of the
    paper's per-GPU savings numbers (up to 7.82 %).
    """
    energy = (
        report.total_device_j()["GPU"] if gpu_only else report.total_j()
    )
    return Metrics(time_s=report.max_window_time_s(), energy_j=energy)


def per_function_metrics(
    report: EnergyReport, device: str = "GPU"
) -> Dict[str, Metrics]:
    """Per-function (time, device energy) pairs — the Fig. 8 inputs."""
    out = {}
    n_ranks = max(len(report.ranks), 1)
    for name, rec in report.aggregate_functions().items():
        out[name] = Metrics(
            # Average per-rank time: ranks run the functions concurrently.
            time_s=rec.time_s / n_ranks,
            energy_j=rec.device_j[device],
        )
    return out


def normalize_series(
    series: Dict[str, Metrics], baseline_key: str
) -> Dict[str, "tuple"]:
    """Normalize a {label: Metrics} series to one baseline entry.

    Returns ``{label: (time_ratio, energy_ratio, edp_ratio)}``.
    """
    if baseline_key not in series:
        raise KeyError(f"baseline {baseline_key!r} not in series")
    base = series[baseline_key]
    out = {}
    for label, metrics in series.items():
        norm = metrics.normalized_to(base)
        out[label] = (norm.time, norm.energy, norm.edp)
    return out
