"""Pareto analysis of the time/energy trade-off (§IV-D).

The paper frames dynamic frequency scaling as "identifying
Pareto-optimal solutions that provide acceptable performance and lower
energy consumption". These helpers compute the Pareto front over a set
of measured (time, energy) points and classify each configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .edp import Metrics


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's position in the trade-off space."""

    label: str
    metrics: Metrics
    dominated_by: Tuple[str, ...]

    @property
    def optimal(self) -> bool:
        return not self.dominated_by


def _dominates(a: Metrics, b: Metrics) -> bool:
    """True if ``a`` is no worse on both axes and better on one."""
    no_worse = a.time_s <= b.time_s and a.energy_j <= b.energy_j
    better = a.time_s < b.time_s or a.energy_j < b.energy_j
    return no_worse and better


def pareto_analysis(series: Dict[str, Metrics]) -> List[ParetoPoint]:
    """Classify every configuration; Pareto-optimal ones are undominated.

    Returns points sorted by time-to-solution.
    """
    if not series:
        raise ValueError("nothing to analyze")
    points = []
    for label, metrics in series.items():
        dominated_by = tuple(
            other
            for other, m in series.items()
            if other != label and _dominates(m, metrics)
        )
        points.append(
            ParetoPoint(label=label, metrics=metrics, dominated_by=dominated_by)
        )
    return sorted(points, key=lambda p: p.metrics.time_s)


def pareto_front(series: Dict[str, Metrics]) -> List[str]:
    """Labels of the Pareto-optimal configurations, fastest first."""
    return [p.label for p in pareto_analysis(series) if p.optimal]


def knee_point(series: Dict[str, Metrics]) -> str:
    """The front configuration with the best EDP (the paper's combined
    metric is exactly a knee criterion for this trade-off)."""
    front = pareto_front(series)
    return min(front, key=lambda label: series[label].edp)
