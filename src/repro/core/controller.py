"""Frequency controller: the NVML instrumentation of §III-D.

The controller is a :class:`~repro.core.hooks.FunctionHook` registered
*before* the energy profiler, mirroring the paper's instrumentation:

    nvmlDevice_t nvmlDeviceId;
    getNvmlDevice(&nvmlDeviceId);
    nvmlDeviceSetApplicationsClocks(nvmlDeviceId, memClk, gfxClk);

Each MPI rank is bound to one GPU, so the rank's device handle is its
device index. Clock changes go through the management library (NVML on
Nvidia systems, ROCm SMI on AMD systems) and cost simulated latency;
the controller skips the call when the device is already at the
requested bin, as the real instrumentation does.
"""

from __future__ import annotations

from typing import List, Optional

from .. import nvml, rocm
from ..hardware.gpu import SimulatedGpu
from ..units import to_mhz
from .freq_policy import FrequencyPolicy


class FrequencyController:
    """Applies a :class:`FrequencyPolicy` around step functions."""

    def __init__(
        self,
        gpus: List[SimulatedGpu],
        policy: FrequencyPolicy,
        telemetry: Optional[object] = None,
    ) -> None:
        if not gpus:
            raise ValueError("controller needs at least one device")
        self._gpus = gpus
        self.policy = policy
        self._vendor = gpus[0].spec.vendor
        self.clock_set_calls = 0
        #: Redundant requests elided (device already at the target bin).
        self.clock_set_skipped = 0
        #: Optional :class:`~repro.telemetry.TraceCollector` receiving
        #: clock-change instants and skip/call metrics.
        self.telemetry = telemetry

    # -- lifecycle ------------------------------------------------------------

    def apply_initial_mode(self) -> None:
        """Set every device to the policy's starting mode (run start)."""
        initial = self.policy.initial_mode()
        for rank in range(len(self._gpus)):
            if initial is None:
                self._reset(rank)
            else:
                self._set(rank, initial)

    def restore_defaults(self) -> None:
        """Pin every device back to its default clock (run end)."""
        for rank, gpu in enumerate(self._gpus):
            self._set(rank, to_mhz(gpu.spec.default_clock_hz))

    # -- hook interface --------------------------------------------------------

    def before_function(self, function: str, rank: int) -> None:
        target = self.policy.frequency_for(function)
        if target is not None:
            self._set(rank, target)

    def after_function(self, function: str, rank: int) -> None:
        # ManDyn resets happen via the *next* function's before-call;
        # nothing to do here.
        return

    # -- device access through the management library ---------------------------

    def _set(self, rank: int, freq_mhz: float) -> None:
        from .. import levelzero

        gpu = self._gpus[rank]
        quantized_hz = gpu.spec.quantize_clock_hz(freq_mhz * 1e6)
        if gpu.application_clock_hz == quantized_hz:
            # Already there: skip the (costly) library call.
            self.clock_set_skipped += 1
            if self.telemetry is not None:
                self.telemetry.record_clock_skip(rank, to_mhz(quantized_hz))
            return
        prev_hz = gpu.application_clock_hz
        self.clock_set_calls += 1
        if self._vendor == "nvidia":
            handle = nvml.nvmlDeviceGetHandleByIndex(rank)
            mem_mhz = nvml.nvmlDeviceGetSupportedMemoryClocks(handle)[0]
            nvml.nvmlDeviceSetApplicationsClocks(
                handle, mem_mhz, int(round(to_mhz(quantized_hz)))
            )
        elif self._vendor == "amd":
            rocm.rsmi_dev_gpu_clk_freq_set(
                rank, rocm.RSMI_CLK_TYPE_SYS, quantized_hz
            )
        else:  # intel: pin via a degenerate Sysman frequency range
            pinned = to_mhz(quantized_hz)
            levelzero.zesFrequencySetRange(
                rank, levelzero.ZES_FREQ_DOMAIN_GPU, pinned, pinned
            )
        if self.telemetry is not None:
            self.telemetry.record_clock_set(
                rank,
                to_mhz(quantized_hz),
                from_mhz=None if prev_hz is None else to_mhz(prev_hz),
            )

    def _reset(self, rank: int) -> None:
        from .. import levelzero

        gpu = self._gpus[rank]
        if gpu.dvfs_active:
            # The governor already owns the device: nothing to undo.
            self.clock_set_skipped += 1
            if self.telemetry is not None:
                self.telemetry.record_clock_skip(rank, None)
            return
        self.clock_set_calls += 1
        if self._vendor == "nvidia":
            handle = nvml.nvmlDeviceGetHandleByIndex(rank)
            nvml.nvmlDeviceResetApplicationsClocks(handle)
        elif self._vendor == "amd":
            rocm.rsmi_dev_gpu_clk_freq_reset(rank)
        else:
            levelzero.zesFrequencySetRange(
                rank,
                levelzero.ZES_FREQ_DOMAIN_GPU,
                to_mhz(gpu.spec.min_clock_hz),
                to_mhz(gpu.spec.max_clock_hz),
            )
        if self.telemetry is not None:
            self.telemetry.record_clock_set(rank, None, reset=True)
            self.telemetry.record_dvfs_handover(rank)

    def current_clock_mhz(self, rank: int) -> float:
        """Current graphics clock of a rank's device, MHz."""
        return to_mhz(self._gpus[rank].current_clock_hz)
