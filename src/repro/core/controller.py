"""Frequency controller: the NVML instrumentation of §III-D.

The controller is a :class:`~repro.core.hooks.FunctionHook` registered
*before* the energy profiler, mirroring the paper's instrumentation:

    nvmlDevice_t nvmlDeviceId;
    getNvmlDevice(&nvmlDeviceId);
    nvmlDeviceSetApplicationsClocks(nvmlDeviceId, memClk, gfxClk);

Each MPI rank is bound to one GPU, so the rank's device handle is its
device index. Clock changes go through the management library (NVML on
Nvidia systems, ROCm SMI on AMD systems) and cost simulated latency;
the controller skips the call when the device is already at the
requested bin, as the real instrumentation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import nvml, rocm
from ..hardware.gpu import SimulatedGpu
from ..nvml.errors import (
    NVML_FATAL_ERROR_CODES,
    NVML_TRANSIENT_ERROR_CODES,
    NVMLError,
)
from ..rocm.smi import (
    RSMI_FATAL_STATUS_CODES,
    RSMI_TRANSIENT_STATUS_CODES,
    RocmSmiError,
)
from ..units import to_mhz
from .freq_policy import FrequencyPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/degradation policy for management-library failures.

    Without a config (the default) the controller is fail-loud: any
    vendor error propagates, matching the behaviour real instrumented
    runs exhibit when NVML misbehaves and nobody handles it.

    With a config, transient errors (NVML ``TIMEOUT``/``UNKNOWN``,
    RSMI ``BUSY``) are retried up to ``max_retries`` times with a
    deterministic exponential backoff burned on the rank's simulated
    clock. Fatal errors (``GPU_IS_LOST``, ``AMDGPU_RESTART_ERR``) trip
    the rank's circuit breaker immediately; other errors (not
    supported, no permission) trip it after ``breaker_threshold``
    consecutive failed operations. A tripped breaker hands the device
    to its DVFS governor and stops issuing vendor calls for that rank —
    the run completes, degraded instead of dead.
    """

    max_retries: int = 2
    backoff_s: float = 0.002
    backoff_multiplier: float = 2.0
    breaker_threshold: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0.0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker threshold must be >= 1")

    def backoff_for_attempt(self, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (0-based)."""
        return self.backoff_s * self.backoff_multiplier**attempt


@dataclass(frozen=True)
class DegradationRecord:
    """One rank handed to its DVFS governor by the circuit breaker."""

    rank: int
    time_s: float
    reason: str

    def describe(self) -> str:
        return (
            f"rank {self.rank} degraded to DVFS governor at "
            f"t={self.time_s:.6f}s: {self.reason}"
        )


class FrequencyController:
    """Applies a :class:`FrequencyPolicy` around step functions."""

    def __init__(
        self,
        gpus: List[SimulatedGpu],
        policy: FrequencyPolicy,
        telemetry: Optional[object] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        if not gpus:
            raise ValueError("controller needs at least one device")
        self._gpus = gpus
        self.policy = policy
        self._vendor = gpus[0].spec.vendor
        self.clock_set_calls = 0
        #: Redundant requests elided (device already at the target bin).
        self.clock_set_skipped = 0
        #: Optional :class:`~repro.telemetry.TraceCollector` receiving
        #: clock-change instants and skip/call metrics.
        self.telemetry = telemetry
        #: ``None`` = fail-loud (vendor errors propagate unchanged).
        self.resilience = resilience
        #: Breaker trips, in trip order.
        self.degradations: List[DegradationRecord] = []
        #: Transient-error retries performed across all ranks.
        self.retries_performed = 0
        #: Vendor errors observed (including ones absorbed by retries).
        self.vendor_errors = 0
        self._consecutive_failures: Dict[int, int] = {}
        self._degraded: Dict[int, DegradationRecord] = {}

    # -- lifecycle ------------------------------------------------------------

    def apply_initial_mode(self) -> None:
        """Set every device to the policy's starting mode (run start)."""
        initial = self.policy.initial_mode()
        for rank in range(len(self._gpus)):
            if initial is None:
                self._reset(rank)
            else:
                self._set(rank, initial)

    def restore_defaults(self) -> None:
        """Pin every device back to its default clock (run end).

        Degraded ranks are left with their DVFS governor — their
        management library is the thing that failed.
        """
        for rank, gpu in enumerate(self._gpus):
            if self.is_degraded(rank):
                continue
            self._set(rank, to_mhz(gpu.spec.default_clock_hz))

    # -- degradation state ------------------------------------------------------

    def is_degraded(self, rank: int) -> bool:
        """Has this rank's circuit breaker tripped?"""
        return rank in self._degraded

    @property
    def degraded_ranks(self) -> List[int]:
        """Ranks running under their DVFS governor, ascending."""
        return sorted(self._degraded)

    def degradation_for(self, rank: int) -> Optional[DegradationRecord]:
        return self._degraded.get(rank)

    # -- checkpoint -------------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable counters and degradation history."""
        return {
            "clock_set_calls": self.clock_set_calls,
            "clock_set_skipped": self.clock_set_skipped,
            "retries_performed": self.retries_performed,
            "vendor_errors": self.vendor_errors,
            "consecutive_failures": {
                str(rank): n
                for rank, n in self._consecutive_failures.items()
            },
            "degradations": [
                {"rank": d.rank, "time_s": d.time_s, "reason": d.reason}
                for d in self.degradations
            ],
        }

    def restore_state(self, state: dict) -> None:
        self.clock_set_calls = int(state["clock_set_calls"])
        self.clock_set_skipped = int(state["clock_set_skipped"])
        self.retries_performed = int(state["retries_performed"])
        self.vendor_errors = int(state["vendor_errors"])
        self._consecutive_failures = {
            int(rank): int(n)
            for rank, n in state["consecutive_failures"].items()
        }
        self.degradations = [
            DegradationRecord(
                rank=int(d["rank"]),
                time_s=float(d["time_s"]),
                reason=str(d["reason"]),
            )
            for d in state["degradations"]
        ]
        # The per-rank degraded map is derivable: the *latest* trip per
        # rank wins (ranks never un-degrade within a run).
        self._degraded = {d.rank: d for d in self.degradations}

    # -- hook interface --------------------------------------------------------

    def before_function(self, function: str, rank: int) -> None:
        if self.is_degraded(rank):
            return
        target = self.policy.frequency_for(function)
        if target is not None:
            self._set(rank, target)

    def after_function(self, function: str, rank: int) -> None:
        # ManDyn resets happen via the *next* function's before-call;
        # nothing to do here.
        return

    # -- resilience core ---------------------------------------------------------

    @staticmethod
    def _classify(exc: Exception) -> str:
        """``"transient"``, ``"fatal"`` or ``"hard"`` for a vendor error."""
        if isinstance(exc, NVMLError):
            if exc.value in NVML_TRANSIENT_ERROR_CODES:
                return "transient"
            if exc.value in NVML_FATAL_ERROR_CODES:
                return "fatal"
            return "hard"
        if isinstance(exc, RocmSmiError):
            if exc.status in RSMI_TRANSIENT_STATUS_CODES:
                return "transient"
            if exc.status in RSMI_FATAL_STATUS_CODES:
                return "fatal"
            return "hard"
        return "hard"

    def _degrade(self, rank: int, reason: str) -> None:
        """Trip the rank's breaker: hand the device to its governor."""
        gpu = self._gpus[rank]
        # Local handover — the management library is what failed, so the
        # device model is released directly (a lost device reappears
        # under default DVFS management after driver recovery).
        if not gpu.dvfs_active:
            gpu.reset_application_clocks()
        record = DegradationRecord(
            rank=rank, time_s=gpu.clock.now, reason=reason
        )
        self._degraded[rank] = record
        self.degradations.append(record)
        if self.telemetry is not None:
            self.telemetry.record_degradation(rank, reason)
            self.telemetry.record_dvfs_handover(rank)

    def _guarded(self, rank: int, op: str, call: Callable[[], None]) -> bool:
        """Run a vendor call under the resilience policy.

        Returns ``True`` when the call (or a retry of it) succeeded.
        With no :class:`ResilienceConfig` the call is fail-loud. With
        one, transient errors retry with deterministic backoff, and
        repeated or fatal failures trip the rank's circuit breaker —
        after which the method reports ``False`` and the caller records
        nothing, because nothing happened on the device.
        """
        cfg = self.resilience
        if cfg is None:
            call()
            return True
        attempt = 0
        while True:
            try:
                call()
            except (NVMLError, RocmSmiError) as exc:
                self.vendor_errors += 1
                severity = self._classify(exc)
                if severity == "transient" and attempt < cfg.max_retries:
                    self._gpus[rank].clock.advance(
                        cfg.backoff_for_attempt(attempt)
                    )
                    attempt += 1
                    self.retries_performed += 1
                    if self.telemetry is not None:
                        self.telemetry.record_retry(
                            rank, op, attempt, str(exc)
                        )
                    continue
                if severity == "fatal":
                    self._degrade(rank, f"{op}: {exc}")
                    return False
                failures = self._consecutive_failures.get(rank, 0) + 1
                self._consecutive_failures[rank] = failures
                if failures >= cfg.breaker_threshold:
                    self._degrade(
                        rank,
                        f"{op}: {exc} "
                        f"({failures} consecutive failed operations)",
                    )
                return False
            else:
                self._consecutive_failures[rank] = 0
                return True

    # -- device access through the management library ---------------------------

    def _set(self, rank: int, freq_mhz: float) -> None:
        from .. import levelzero

        if self.is_degraded(rank):
            return
        gpu = self._gpus[rank]
        quantized_hz = gpu.spec.quantize_clock_hz(freq_mhz * 1e6)
        if gpu.application_clock_hz == quantized_hz:
            # Already there: skip the (costly) library call.
            self.clock_set_skipped += 1
            if self.telemetry is not None:
                self.telemetry.record_clock_skip(rank, to_mhz(quantized_hz))
            return
        prev_hz = gpu.application_clock_hz
        self.clock_set_calls += 1

        def do_set() -> None:
            if self._vendor == "nvidia":
                handle = nvml.nvmlDeviceGetHandleByIndex(rank)
                mem_mhz = nvml.nvmlDeviceGetSupportedMemoryClocks(handle)[0]
                nvml.nvmlDeviceSetApplicationsClocks(
                    handle, mem_mhz, int(round(to_mhz(quantized_hz)))
                )
            elif self._vendor == "amd":
                rocm.rsmi_dev_gpu_clk_freq_set(
                    rank, rocm.RSMI_CLK_TYPE_SYS, quantized_hz
                )
            else:  # intel: pin via a degenerate Sysman frequency range
                pinned = to_mhz(quantized_hz)
                levelzero.zesFrequencySetRange(
                    rank, levelzero.ZES_FREQ_DOMAIN_GPU, pinned, pinned
                )

        op = "set_application_clocks"
        if not self._guarded(rank, op, do_set):
            return
        if self.telemetry is not None:
            self.telemetry.record_clock_set(
                rank,
                to_mhz(quantized_hz),
                from_mhz=None if prev_hz is None else to_mhz(prev_hz),
            )

    def _reset(self, rank: int) -> None:
        from .. import levelzero

        if self.is_degraded(rank):
            return
        gpu = self._gpus[rank]
        if gpu.dvfs_active:
            # The governor already owns the device: nothing to undo.
            self.clock_set_skipped += 1
            if self.telemetry is not None:
                self.telemetry.record_clock_skip(rank, None)
            return
        self.clock_set_calls += 1

        def do_reset() -> None:
            if self._vendor == "nvidia":
                handle = nvml.nvmlDeviceGetHandleByIndex(rank)
                nvml.nvmlDeviceResetApplicationsClocks(handle)
            elif self._vendor == "amd":
                rocm.rsmi_dev_gpu_clk_freq_reset(rank)
            else:
                levelzero.zesFrequencySetRange(
                    rank,
                    levelzero.ZES_FREQ_DOMAIN_GPU,
                    to_mhz(gpu.spec.min_clock_hz),
                    to_mhz(gpu.spec.max_clock_hz),
                )

        if not self._guarded(rank, "reset_application_clocks", do_reset):
            return
        if self.telemetry is not None:
            self.telemetry.record_clock_set(rank, None, reset=True)
            self.telemetry.record_dvfs_handover(rank)

    def current_clock_mhz(self, rank: int) -> float:
        """Current graphics clock of a rank's device, MHz."""
        return to_mhz(self._gpus[rank].current_clock_hz)
