"""The paper's contribution: instrumentation for energy measurement and
dynamic GPU frequency scaling (DESIGN.md §3, row ``repro.core``)."""

from .analysis import (
    device_breakdown_mj,
    device_breakdown_percent,
    function_share_percent,
    normalize_series,
    per_function_metrics,
    run_metrics,
    top_functions,
)
from .characterize import (
    KernelCharacter,
    characterize_functions,
    recommend_frequencies,
)
from .controller import (
    DegradationRecord,
    FrequencyController,
    ResilienceConfig,
)
from .edp import Metrics, NormalizedMetrics, energy_delay_product
from .energy import (
    DEVICE_CLASSES,
    CardShareGpuSource,
    EnergyProfiler,
    EnergyReport,
    FunctionEnergyRecord,
    GpuEnergySource,
    RankEnergyReport,
    make_gpu_sources,
    make_profiler,
)
from .freq_policy import (
    DvfsPolicy,
    FrequencyPolicy,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
)
from .hooks import FunctionHook, HookRegistry
from .online_tuning import OnlineTuningPolicy
from .pareto import ParetoPoint, knee_point, pareto_analysis, pareto_front
from .report_diff import FunctionDiff, ReportDiff, diff_reports

__all__ = [
    "device_breakdown_mj",
    "device_breakdown_percent",
    "function_share_percent",
    "normalize_series",
    "per_function_metrics",
    "run_metrics",
    "top_functions",
    "KernelCharacter",
    "characterize_functions",
    "recommend_frequencies",
    "FrequencyController",
    "ResilienceConfig",
    "DegradationRecord",
    "Metrics",
    "NormalizedMetrics",
    "energy_delay_product",
    "DEVICE_CLASSES",
    "CardShareGpuSource",
    "EnergyProfiler",
    "EnergyReport",
    "FunctionEnergyRecord",
    "GpuEnergySource",
    "RankEnergyReport",
    "make_gpu_sources",
    "make_profiler",
    "DvfsPolicy",
    "FrequencyPolicy",
    "ManDynPolicy",
    "StaticFrequencyPolicy",
    "baseline_policy",
    "FunctionHook",
    "HookRegistry",
    "OnlineTuningPolicy",
    "ParetoPoint",
    "knee_point",
    "pareto_analysis",
    "pareto_front",
    "FunctionDiff",
    "ReportDiff",
    "diff_reports",
]
