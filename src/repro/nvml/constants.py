"""NVML enum constants (pynvml-compatible subset)."""

from __future__ import annotations

# nvmlClockType_t
NVML_CLOCK_GRAPHICS = 0
NVML_CLOCK_SM = 1
NVML_CLOCK_MEM = 2
NVML_CLOCK_VIDEO = 3

# nvmlClockId_t
NVML_CLOCK_ID_CURRENT = 0
NVML_CLOCK_ID_APP_CLOCK_TARGET = 1
NVML_CLOCK_ID_APP_CLOCK_DEFAULT = 2
NVML_CLOCK_ID_CUSTOMER_BOOST_MAX = 3

# nvmlTemperatureSensors_t
NVML_TEMPERATURE_GPU = 0

# nvmlEnableState_t
NVML_FEATURE_DISABLED = 0
NVML_FEATURE_ENABLED = 1
