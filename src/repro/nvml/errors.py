"""NVML error codes and exception type (pynvml-compatible subset)."""

from __future__ import annotations

NVML_SUCCESS = 0
NVML_ERROR_UNINITIALIZED = 1
NVML_ERROR_INVALID_ARGUMENT = 2
NVML_ERROR_NOT_SUPPORTED = 3
NVML_ERROR_NO_PERMISSION = 4
NVML_ERROR_ALREADY_INITIALIZED = 5
NVML_ERROR_NOT_FOUND = 6
NVML_ERROR_GPU_IS_LOST = 15
NVML_ERROR_UNKNOWN = 999

_ERROR_STRINGS = {
    NVML_SUCCESS: "Success",
    NVML_ERROR_UNINITIALIZED: "Uninitialized",
    NVML_ERROR_INVALID_ARGUMENT: "Invalid Argument",
    NVML_ERROR_NOT_SUPPORTED: "Not Supported",
    NVML_ERROR_NO_PERMISSION: "Insufficient Permissions",
    NVML_ERROR_ALREADY_INITIALIZED: "Already Initialized",
    NVML_ERROR_NOT_FOUND: "Not Found",
    NVML_ERROR_GPU_IS_LOST: "GPU is lost",
    NVML_ERROR_UNKNOWN: "Unknown Error",
}


class NVMLError(Exception):
    """Raised by every failing NVML entry point, carrying the code."""

    def __init__(self, value: int) -> None:
        self.value = value
        super().__init__(nvmlErrorString(value))


def nvmlErrorString(result: int) -> str:
    """Human-readable string for an NVML return code."""
    return _ERROR_STRINGS.get(result, f"Unknown Error code {result}")
