"""NVML error codes and exception type (pynvml-compatible subset)."""

from __future__ import annotations

NVML_SUCCESS = 0
NVML_ERROR_UNINITIALIZED = 1
NVML_ERROR_INVALID_ARGUMENT = 2
NVML_ERROR_NOT_SUPPORTED = 3
NVML_ERROR_NO_PERMISSION = 4
NVML_ERROR_ALREADY_INITIALIZED = 5
NVML_ERROR_NOT_FOUND = 6
NVML_ERROR_TIMEOUT = 10
NVML_ERROR_GPU_IS_LOST = 15
NVML_ERROR_UNKNOWN = 999

_ERROR_STRINGS = {
    NVML_SUCCESS: "Success",
    NVML_ERROR_UNINITIALIZED: "Uninitialized",
    NVML_ERROR_INVALID_ARGUMENT: "Invalid Argument",
    NVML_ERROR_NOT_SUPPORTED: "Not Supported",
    NVML_ERROR_NO_PERMISSION: "Insufficient Permissions",
    NVML_ERROR_ALREADY_INITIALIZED: "Already Initialized",
    NVML_ERROR_NOT_FOUND: "Not Found",
    NVML_ERROR_TIMEOUT: "Timeout",
    NVML_ERROR_GPU_IS_LOST: "GPU is lost",
    NVML_ERROR_UNKNOWN: "Unknown Error",
}

#: Codes worth retrying: the call may succeed moments later.
NVML_TRANSIENT_ERROR_CODES = frozenset(
    {NVML_ERROR_TIMEOUT, NVML_ERROR_UNKNOWN}
)

#: Codes after which the device will not come back this run.
NVML_FATAL_ERROR_CODES = frozenset({NVML_ERROR_GPU_IS_LOST})


class NVMLError(Exception):
    """Raised by every failing NVML entry point, carrying the code."""

    def __init__(self, value: int) -> None:
        self.value = value
        super().__init__(nvmlErrorString(value))


def nvmlErrorString(result: int) -> str:
    """Human-readable string for an NVML return code.

    Codes missing from the table (future driver versions, injected
    faults) degrade to a readable ``"unknown error code <n>"`` message
    rather than a bare ``KeyError`` or numeric repr — error paths must
    never themselves raise while being formatted.
    """
    try:
        return _ERROR_STRINGS[result]
    except (KeyError, TypeError):
        return f"unknown error code {result}"
