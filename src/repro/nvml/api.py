"""pynvml-compatible API over simulated GPUs.

The paper instruments SPH-EXA with NVML calls — most importantly
``nvmlDeviceSetApplicationsClocks`` before each computational kernel
(§III-D). This module exposes the same entry points, signatures and
unit conventions as pynvml (clocks in MHz integers, power in
milliwatts, energy in millijoules), backed by
:class:`~repro.hardware.gpu.SimulatedGpu` devices.

A "driver" registry stands in for the kernel-mode driver: tests and
systems attach the simulated devices with :func:`attach_devices`
before calling :func:`nvmlInit`, exactly as a process would find the
devices the node exposes. Per the paper's user-level access story,
application-clock changes are permitted without superuser privileges
unless the registry is configured otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hardware.gpu import SimulatedGpu
from ..units import mhz, to_mhz
from .constants import (
    NVML_CLOCK_GRAPHICS,
    NVML_CLOCK_MEM,
    NVML_CLOCK_SM,
    NVML_TEMPERATURE_GPU,
)
from .errors import (
    NVML_ERROR_INVALID_ARGUMENT,
    NVML_ERROR_NO_PERMISSION,
    NVML_ERROR_NOT_FOUND,
    NVML_ERROR_NOT_SUPPORTED,
    NVML_ERROR_UNINITIALIZED,
    NVMLError,
)

DRIVER_VERSION = "535.104.05-sim"
NVML_VERSION = "12.535.104-sim"


@dataclass(frozen=True)
class _DeviceHandle:
    """Opaque device handle returned by ``nvmlDeviceGetHandleByIndex``."""

    index: int


@dataclass
class UtilizationRates:
    """Mirror of ``nvmlUtilization_t`` (percentages)."""

    gpu: int
    memory: int


class _Driver:
    """Process-wide simulated NVML driver state."""

    def __init__(self) -> None:
        self.devices: List[SimulatedGpu] = []
        self.initialized = False
        self.allow_clock_control = True
        self.init_count = 0


_driver = _Driver()


def attach_devices(
    devices: Sequence[SimulatedGpu], allow_clock_control: bool = True
) -> None:
    """Expose simulated devices to this process's NVML.

    ``allow_clock_control=False`` models clusters where application
    clock changes require superuser privileges — the access restriction
    the paper's user-level mechanism works around.
    """
    _driver.devices = list(devices)
    _driver.allow_clock_control = allow_clock_control


def detach_devices() -> None:
    """Remove all attached devices (test teardown helper)."""
    _driver.devices = []
    _driver.initialized = False
    _driver.init_count = 0


def _require_init() -> None:
    if not _driver.initialized:
        raise NVMLError(NVML_ERROR_UNINITIALIZED)


def _device(handle: _DeviceHandle) -> SimulatedGpu:
    _require_init()
    if not isinstance(handle, _DeviceHandle):
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    try:
        return _driver.devices[handle.index]
    except IndexError:
        raise NVMLError(NVML_ERROR_NOT_FOUND) from None


# ---------------------------------------------------------------------------
# Library lifecycle
# ---------------------------------------------------------------------------


def nvmlInit() -> None:
    """Initialize NVML. Re-init is reference counted, as in pynvml."""
    _driver.initialized = True
    _driver.init_count += 1


def nvmlShutdown() -> None:
    """Drop one init reference; the last shutdown de-initializes."""
    _require_init()
    _driver.init_count -= 1
    if _driver.init_count <= 0:
        _driver.initialized = False
        _driver.init_count = 0


def nvmlSystemGetDriverVersion() -> str:
    _require_init()
    return DRIVER_VERSION


def nvmlSystemGetNVMLVersion() -> str:
    _require_init()
    return NVML_VERSION


# ---------------------------------------------------------------------------
# Device discovery
# ---------------------------------------------------------------------------


def nvmlDeviceGetCount() -> int:
    _require_init()
    return len(_driver.devices)


def nvmlDeviceGetHandleByIndex(index: int) -> _DeviceHandle:
    _require_init()
    if not 0 <= index < len(_driver.devices):
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    return _DeviceHandle(index=index)


def nvmlDeviceGetIndex(handle: _DeviceHandle) -> int:
    _device(handle)
    return handle.index


def nvmlDeviceGetName(handle: _DeviceHandle) -> str:
    return _device(handle).spec.name


# ---------------------------------------------------------------------------
# Clock queries
# ---------------------------------------------------------------------------


def nvmlDeviceGetClockInfo(handle: _DeviceHandle, clock_type: int) -> int:
    """Current clock of ``clock_type`` in MHz."""
    dev = _device(handle)
    if clock_type in (NVML_CLOCK_GRAPHICS, NVML_CLOCK_SM):
        return int(round(to_mhz(dev.current_clock_hz)))
    if clock_type == NVML_CLOCK_MEM:
        return int(round(to_mhz(dev.memory_clock_hz)))
    raise NVMLError(NVML_ERROR_NOT_SUPPORTED)


def nvmlDeviceGetApplicationsClock(handle: _DeviceHandle, clock_type: int) -> int:
    """Pinned application clock in MHz (default clock if unpinned)."""
    dev = _device(handle)
    if clock_type in (NVML_CLOCK_GRAPHICS, NVML_CLOCK_SM):
        hz = dev.application_clock_hz
        if hz is None:
            hz = dev.spec.default_clock_hz
        return int(round(to_mhz(hz)))
    if clock_type == NVML_CLOCK_MEM:
        return int(round(to_mhz(dev.memory_clock_hz)))
    raise NVMLError(NVML_ERROR_NOT_SUPPORTED)


def nvmlDeviceGetMaxClockInfo(handle: _DeviceHandle, clock_type: int) -> int:
    dev = _device(handle)
    if clock_type in (NVML_CLOCK_GRAPHICS, NVML_CLOCK_SM):
        return int(round(to_mhz(dev.spec.max_clock_hz)))
    if clock_type == NVML_CLOCK_MEM:
        return int(round(to_mhz(dev.spec.memory_clock_hz)))
    raise NVMLError(NVML_ERROR_NOT_SUPPORTED)


def nvmlDeviceGetSupportedMemoryClocks(handle: _DeviceHandle) -> List[int]:
    dev = _device(handle)
    return [int(round(to_mhz(dev.spec.memory_clock_hz)))]


def nvmlDeviceGetSupportedGraphicsClocks(
    handle: _DeviceHandle, memory_clock_mhz: int
) -> List[int]:
    """Supported graphics clocks (MHz, descending) for a memory clock."""
    dev = _device(handle)
    supported_mem = int(round(to_mhz(dev.spec.memory_clock_hz)))
    if memory_clock_mhz != supported_mem:
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    return [int(round(to_mhz(hz))) for hz in dev.spec.supported_clocks_hz()]


# ---------------------------------------------------------------------------
# Clock control (the paper's instrumented calls)
# ---------------------------------------------------------------------------


def nvmlDeviceSetApplicationsClocks(
    handle: _DeviceHandle, memory_clock_mhz: int, graphics_clock_mhz: int
) -> None:
    """Pin application clocks; MHz inputs as in real NVML.

    The graphics clock must be one of the supported bins; the memory
    clock must match the device's only supported memory clock (the
    paper never rescales memory clocks either).
    """
    dev = _device(handle)
    if not _driver.allow_clock_control:
        raise NVMLError(NVML_ERROR_NO_PERMISSION)
    supported_mem = int(round(to_mhz(dev.spec.memory_clock_hz)))
    if memory_clock_mhz != supported_mem:
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    requested_hz = mhz(float(graphics_clock_mhz))
    quantized = dev.spec.quantize_clock_hz(requested_hz)
    if abs(quantized - requested_hz) > 1e-3:
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    dev.set_application_clocks(mhz(float(memory_clock_mhz)), requested_hz)


def nvmlDeviceResetApplicationsClocks(handle: _DeviceHandle) -> None:
    """Return the device to default (DVFS-governed) clock management."""
    dev = _device(handle)
    if not _driver.allow_clock_control:
        raise NVMLError(NVML_ERROR_NO_PERMISSION)
    dev.reset_application_clocks()


# ---------------------------------------------------------------------------
# Power / energy / utilization / temperature
# ---------------------------------------------------------------------------


def nvmlDeviceGetPowerUsage(handle: _DeviceHandle) -> int:
    """Instantaneous board power in milliwatts."""
    return int(round(_device(handle).power_w() * 1000.0))


def nvmlDeviceGetTotalEnergyConsumption(handle: _DeviceHandle) -> int:
    """Cumulative board energy in millijoules (Volta+ feature)."""
    return int(round(_device(handle).energy_j * 1000.0))


def nvmlDeviceGetEnforcedPowerLimit(handle: _DeviceHandle) -> int:
    """Board power limit in milliwatts."""
    return int(round(_device(handle).spec.max_power_w * 1000.0))


def nvmlDeviceGetUtilizationRates(handle: _DeviceHandle) -> UtilizationRates:
    """Coarse utilization percentages over the driver sampling window."""
    dev = _device(handle)
    gpu_util = int(round(dev.utilization() * 100.0))
    mem_util = int(round(min(dev.utilization() * 0.7, 1.0) * 100.0))
    return UtilizationRates(gpu=gpu_util, memory=mem_util)


def nvmlDeviceGetTemperature(handle: _DeviceHandle, sensor: int) -> int:
    """Die temperature (degC) from the device's thermal model."""
    if sensor != NVML_TEMPERATURE_GPU:
        raise NVMLError(NVML_ERROR_NOT_SUPPORTED)
    return int(round(_device(handle).temperature_c))


# ---------------------------------------------------------------------------
# Convenience used by the SPH-EXA-style instrumentation (getNvmlDevice)
# ---------------------------------------------------------------------------


def get_nvml_device_for_rank(
    local_rank: int, devices_per_node: Optional[int] = None
) -> _DeviceHandle:
    """Handle of the device driven by a node-local MPI rank.

    Mirrors the paper's ``getNvmlDevice`` helper: each rank is bound to
    exactly one GPU/GCD, so the node-local rank indexes the device.
    """
    _require_init()
    count = nvmlDeviceGetCount()
    if devices_per_node is not None and devices_per_node != count:
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT)
    return nvmlDeviceGetHandleByIndex(local_rank % max(count, 1))


def supported_clock_window_mhz(
    handle: _DeviceHandle, low_mhz: int, high_mhz: int
) -> Tuple[int, ...]:
    """Supported clocks restricted to [low, high] MHz, descending.

    Helper for the KernelTuner-style search space of §III-C
    (1005..1410 MHz on the A100).
    """
    mem = nvmlDeviceGetSupportedMemoryClocks(handle)[0]
    clocks = nvmlDeviceGetSupportedGraphicsClocks(handle, mem)
    return tuple(c for c in clocks if low_mhz <= c <= high_mhz)
