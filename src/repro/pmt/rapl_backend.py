"""PMT backend for host CPUs via a RAPL-style MSR energy counter.

Real RAPL exposes ``MSR_PKG_ENERGY_STATUS``, a 32-bit register counting
energy units (15.3 uJ by default) that *wraps* every few minutes under
load. The backend reproduces the raw wrapping counter and performs the
unwrapping a real PMT/LIKWID reader must do — including the limitation
that readings spaced further apart than one wrap period are
irrecoverably ambiguous.
"""

from __future__ import annotations

from ..hardware.cpu import SimulatedCpu
from .base import PMT, State

#: Default RAPL energy unit: 1/2^16 J ~ 15.3 microjoules.
RAPL_ENERGY_UNIT_J = 1.0 / (1 << 16)

#: The package energy counter is 32 bits wide.
RAPL_COUNTER_WRAP = 1 << 32


class RaplCounter:
    """The raw, wrapping MSR view of a CPU package energy counter."""

    def __init__(self, cpu: SimulatedCpu, unit_j: float = RAPL_ENERGY_UNIT_J):
        self._cpu = cpu
        self.unit_j = unit_j

    def read_raw(self) -> int:
        """Raw 32-bit counter value in RAPL energy units (wraps)."""
        units = int(self._cpu.energy_j / self.unit_j)
        return units % RAPL_COUNTER_WRAP

    @property
    def wrap_joules(self) -> float:
        """Energy span covered by one full counter wrap."""
        return RAPL_COUNTER_WRAP * self.unit_j


class RaplPMT(PMT):
    """Monitors one CPU package through the wrapping RAPL counter."""

    platform = "rapl"

    def __init__(self, cpu: SimulatedCpu) -> None:
        self._cpu = cpu
        self._counter = RaplCounter(cpu)
        self._accumulated_j = 0.0
        self._last_raw = self._counter.read_raw()

    @property
    def wrap_joules(self) -> float:
        return self._counter.wrap_joules

    def read(self) -> State:
        raw = self._counter.read_raw()
        delta_units = raw - self._last_raw
        if delta_units < 0:
            # The 32-bit counter wrapped since the last reading.
            delta_units += RAPL_COUNTER_WRAP
        self._last_raw = raw
        self._accumulated_j += delta_units * self._counter.unit_j
        return State(
            timestamp_s=self._cpu.clock.now,
            joules=self._accumulated_j,
            watts=self._cpu.power_w(),
        )
