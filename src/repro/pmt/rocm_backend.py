"""PMT backend for AMD GPUs via the (simulated) ROCm SMI library.

MI250X caveat carried over from the real stack: the energy counter is
*card level*, so two ranks driving the two GCDs of one card read the
same (summed) counter. ``card_share`` lets a caller divide the reading
by the number of GCDs per card when an even split is an acceptable
approximation; the paper's analysis scripts instead combine the two
ranks' measurements (§III-B), which `repro.core.analysis` implements.
"""

from __future__ import annotations

from .. import rocm
from ..rocm import smi as _smi
from .base import PMT, State


class RocmPMT(PMT):
    """Monitors one AMD GCD (card-level sensors) through ROCm SMI."""

    platform = "rocm"

    def __init__(self, device_index: int = 0, card_share: bool = False) -> None:
        rocm.rsmi_init()
        if not 0 <= device_index < rocm.rsmi_num_monitor_devices():
            raise ValueError(f"no such ROCm device: {device_index}")
        self._device_index = device_index
        self._card_share = card_share
        self._divisor = (
            float(rocm.gcds_per_card(device_index)) if card_share else 1.0
        )
        self._clock = _smi._state.devices[device_index].clock

    @property
    def device_index(self) -> int:
        return self._device_index

    @property
    def card_share(self) -> bool:
        return self._card_share

    def read(self) -> State:
        microjoules = rocm.rsmi_dev_energy_count_get(self._device_index)
        microwatts = rocm.rsmi_dev_power_ave_get(self._device_index)
        return State(
            timestamp_s=self._clock.now,
            joules=microjoules / 1e6 / self._divisor,
            watts=microwatts / 1e6 / self._divisor,
        )
