"""PMT backend for Intel GPUs via Level Zero Sysman energy counters."""

from __future__ import annotations

from .. import levelzero
from ..levelzero import sysman as _sysman
from .base import PMT, State


class LevelZeroPMT(PMT):
    """Monitors one Intel device through ``zesPowerGetEnergyCounter``."""

    platform = "levelzero"

    def __init__(self, device_index: int = 0) -> None:
        levelzero.zesInit()
        if not 0 <= device_index < levelzero.zesDeviceGetCount():
            raise ValueError(f"no such Level Zero device: {device_index}")
        self._device_index = device_index
        self._clock = _sysman._state.devices[device_index].clock

    @property
    def device_index(self) -> int:
        return self._device_index

    def read(self) -> State:
        counter = levelzero.zesPowerGetEnergyCounter(self._device_index)
        return State(
            timestamp_s=counter.timestamp_us / 1e6,
            joules=counter.energy_uj / 1e6,
            watts=None,  # Sysman exposes no instantaneous power; diff it.
        )
