"""PMT backend for HPE/Cray nodes via emulated pm_counters files.

On systems built entirely by HPE/Cray, PMT can read the node's
out-of-band telemetry directly (paper §II-A). Readings carry the 10 Hz
publish staleness of the real sysfs feed.
"""

from __future__ import annotations

from ..craypm import PmCounters
from ..hardware.clock import VirtualClock
from .base import PMT, State


class CrayPMT(PMT):
    """Monitors one pm_counters counter (node, cpu, memory or accel)."""

    platform = "cray"

    def __init__(
        self, counters: PmCounters, counter: str, clock: VirtualClock
    ) -> None:
        # Validate eagerly so misconfigured counters fail at setup, not
        # in the middle of a simulation.
        counters.read_energy_j(counter)
        self._counters = counters
        self._counter = counter
        self._clock = clock

    @property
    def counter(self) -> str:
        return self._counter

    def read(self) -> State:
        power_file = self._counter.replace("energy", "power")
        return State(
            timestamp_s=self._clock.now,
            joules=self._counters.read_energy_j(self._counter),
            watts=self._counters.read_power_w(power_file),
        )
