"""PMT backend for Nvidia GPUs via the (simulated) NVML library."""

from __future__ import annotations

from .. import nvml
from .base import PMT, State


class NvmlPMT(PMT):
    """Monitors one Nvidia device through NVML energy/power counters."""

    platform = "nvml"

    def __init__(self, device_index: int = 0) -> None:
        nvml.nvmlInit()
        self._handle = nvml.nvmlDeviceGetHandleByIndex(device_index)
        self._device_index = device_index
        # Clock reference for timestamps: NVML itself has no clock, so
        # read it from the simulated device behind the handle.
        self._clock = nvml.api._driver.devices[device_index].clock

    @property
    def device_index(self) -> int:
        return self._device_index

    def read(self) -> State:
        millijoules = nvml.nvmlDeviceGetTotalEnergyConsumption(self._handle)
        milliwatts = nvml.nvmlDeviceGetPowerUsage(self._handle)
        return State(
            timestamp_s=self._clock.now,
            joules=millijoules / 1000.0,
            watts=milliwatts / 1000.0,
        )
