"""The PMT dummy backend: always-zero readings on a supplied clock.

Used, as in the real toolkit, to instrument code on platforms without
any available sensor while keeping the code path identical.
"""

from __future__ import annotations

from ..hardware.clock import VirtualClock
from .base import PMT, State


class DummyPMT(PMT):
    """A sensor that measures nothing (but keeps valid timestamps)."""

    platform = "dummy"

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock

    def read(self) -> State:
        return State(timestamp_s=self._clock.now, joules=0.0, watts=0.0)
