"""PMT (Power Measurement Toolkit) core interface.

Reimplementation of the interface of Corda et al.'s PMT library [4]:
a sensor object per monitored device with a uniform ``read()`` that
returns a :class:`State` (timestamp + cumulative joules), plus static
helpers to difference two states into seconds, joules and average
watts. Backends adapt vendor counter APIs (NVML, ROCm SMI, RAPL,
Cray pm_counters) to this interface so instrumented application code
never changes when the platform does — the property the paper relies
on to support LUMI-G, CSCS-A100 and miniHPC with one code path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


class PowerReadError(RuntimeError):
    """A sensor read failed (counter dropout, stale node, lost device).

    Raised by fault-injecting sensor wrappers and by backends whose
    underlying counters went away mid-run. :class:`~repro.pmt.sampler.PmtSampler`
    treats it as a gap to be marked and interpolated over; direct
    callers of :meth:`PMT.read` see it as an ordinary exception.
    """


@dataclass(frozen=True)
class State:
    """One sensor reading.

    Attributes
    ----------
    timestamp_s:
        Simulated time of the reading, seconds.
    joules:
        Cumulative energy at the reading, joules (monotone).
    watts:
        Instantaneous power if the backend can report it, else ``None``.
    """

    timestamp_s: float
    joules: float
    watts: Optional[float] = None


class PMT(abc.ABC):
    """Abstract power sensor with PMT's read/diff interface."""

    #: Backend name, e.g. ``"nvml"`` — mirrors PMT's ``Create(name)``.
    platform: str = "abstract"

    @abc.abstractmethod
    def read(self) -> State:
        """Take one reading of the monitored device."""

    @staticmethod
    def seconds(first: State, second: State) -> float:
        """Elapsed seconds between two readings."""
        return second.timestamp_s - first.timestamp_s

    @staticmethod
    def joules(first: State, second: State) -> float:
        """Energy consumed between two readings."""
        return second.joules - first.joules

    @staticmethod
    def watts(first: State, second: State) -> float:
        """Average power between two readings."""
        dt = PMT.seconds(first, second)
        if dt <= 0.0:
            return 0.0
        return PMT.joules(first, second) / dt

    def measure(self):
        """Context manager measuring energy across a ``with`` block.

        Returns an object whose ``joules``/``seconds``/``watts``
        attributes are populated on exit::

            with sensor.measure() as m:
                run_kernel()
            print(m.joules)
        """
        return _Measurement(self)


class _Measurement:
    """Result object for :meth:`PMT.measure`."""

    def __init__(self, sensor: PMT) -> None:
        self._sensor = sensor
        self.start: Optional[State] = None
        self.end: Optional[State] = None

    def __enter__(self) -> "_Measurement":
        self.start = self._sensor.read()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._sensor.read()

    def _require_done(self) -> None:
        if self.start is None or self.end is None:
            raise RuntimeError("measurement has not completed")

    @property
    def seconds(self) -> float:
        self._require_done()
        assert self.start and self.end
        return PMT.seconds(self.start, self.end)

    @property
    def joules(self) -> float:
        self._require_done()
        assert self.start and self.end
        return PMT.joules(self.start, self.end)

    @property
    def watts(self) -> float:
        self._require_done()
        assert self.start and self.end
        return PMT.watts(self.start, self.end)
