"""Periodic PMT sampling ("dump" mode).

The real PMT library can spawn a measurement thread that samples the
sensor at a fixed rate and dumps ``timestamp joules watts`` lines to a
file (``PMT_DUMP``-style), which is how users get power *time series*
rather than just interval totals. The simulated equivalent subscribes
to a :class:`~repro.hardware.clock.VirtualClock` and takes a reading at
every sampling-period boundary the clock crosses — deterministic, with
zero perturbation of the measured code, like the CPU-side measurement
threads the paper relies on (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hardware.clock import VirtualClock
from .base import PMT, State


@dataclass(frozen=True)
class Sample:
    """One periodic reading."""

    timestamp_s: float
    joules: float
    watts: float


class PmtSampler:
    """Samples a PMT sensor at a fixed rate of simulated time.

    Average power per sample is derived from consecutive cumulative
    joule readings (robust even for backends that report no
    instantaneous watts).
    """

    def __init__(
        self,
        sensor: PMT,
        clock: VirtualClock,
        period_s: float = 0.1,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError("sampling period must be positive")
        self._sensor = sensor
        self._clock = clock
        self.period_s = period_s
        self.samples: List[Sample] = []
        self._running = False
        self._last: Optional[State] = None

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin sampling (takes an immediate first reading).

        Construct/start the sampler *after* the devices are attached to
        the clock so its listener observes post-update counter values.
        """
        if self._running:
            raise RuntimeError("sampler is already running")
        self._running = True
        first = self._sensor.read()
        self._last = State(self._clock.now, first.joules, 0.0)
        self._segment_start_j = first.joules
        self.samples.append(Sample(self._clock.now, first.joules, 0.0))
        self._clock.subscribe(self._on_advance)

    def stop(self) -> List[Sample]:
        """Stop sampling and return the collected series."""
        if not self._running:
            raise RuntimeError("sampler is not running")
        self._clock.unsubscribe(self._on_advance)
        self._running = False
        return list(self.samples)

    def _on_advance(self, t0: float, t1: float) -> None:
        assert self._last is not None
        # Subscribed after the devices: this read carries the t1 value;
        # power is piecewise constant over the advance, so ticks inside
        # it interpolate exactly.
        end_j = self._sensor.read().joules
        start_j = self._segment_start_j
        span = t1 - t0
        next_tick = self._last.timestamp_s + self.period_s
        while next_tick <= t1 + 1e-12:
            frac = 0.0 if span <= 0 else (next_tick - t0) / span
            joules = start_j + (end_j - start_j) * frac
            dt = next_tick - self._last.timestamp_s
            watts = (joules - self._last.joules) / dt if dt > 0 else 0.0
            self.samples.append(Sample(next_tick, joules, watts))
            self._last = State(next_tick, joules, watts)
            next_tick += self.period_s
        self._segment_start_j = end_j

    # -- dump-file support ---------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the series as PMT-dump-style text lines."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write("# timestamp_s joules watts\n")
            for s in self.samples:
                fh.write(f"{s.timestamp_s:.6f} {s.joules:.6f} {s.watts:.3f}\n")

    @staticmethod
    def load_dump(path: str) -> List[Sample]:
        """Read a file written by :meth:`dump`."""
        samples = []
        with open(path, encoding="ascii") as fh:
            for line in fh:
                if line.startswith("#") or not line.strip():
                    continue
                t, j, w = line.split()
                samples.append(Sample(float(t), float(j), float(w)))
        return samples
