"""Periodic PMT sampling ("dump" mode).

The real PMT library can spawn a measurement thread that samples the
sensor at a fixed rate and dumps ``timestamp joules watts`` lines to a
file (``PMT_DUMP``-style), which is how users get power *time series*
rather than just interval totals. The simulated equivalent subscribes
to a :class:`~repro.hardware.clock.VirtualClock` and takes a reading at
every sampling-period boundary the clock crosses — deterministic, with
zero perturbation of the measured code, like the CPU-side measurement
threads the paper relies on (§III-A).

Dump files are versioned: the first line is a ``# {"schema": 1, ...}``
header shared with the telemetry JSONL trace export (see
:mod:`repro.telemetry.events`), so the two export paths cannot silently
diverge. Legacy dumps without a header still load. When a
:class:`~repro.telemetry.TraceCollector` is attached, every sample is
additionally emitted as a power counter event on the rank's counter
track.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hardware.clock import VirtualClock
from ..telemetry.events import check_schema_header, schema_header
from .base import PMT, PowerReadError, State

#: Column order of the dump-file payload lines.
DUMP_COLUMNS = ("timestamp_s", "joules", "watts")


@dataclass(frozen=True)
class Sample:
    """One periodic reading."""

    timestamp_s: float
    joules: float
    watts: float


class PmtSampler:
    """Samples a PMT sensor at a fixed rate of simulated time.

    Average power per sample is derived from consecutive cumulative
    joule readings (robust even for backends that report no
    instantaneous watts).

    Failed reads (:class:`~repro.pmt.base.PowerReadError`) do not kill
    the sampler: the failed interval becomes a *gap*, and once the
    sensor recovers, the ticks that fell inside the gap are back-filled
    by the same piecewise-constant interpolation used for in-advance
    ticks — the series stays on the sampling grid with no holes, and
    every bridged gap is listed in :attr:`gaps` (and on the telemetry
    faults track). A monotonicity guard clamps counter readings that
    run backwards, so one bogus reading cannot produce negative power.

    Parameters
    ----------
    sensor / clock / period_s:
        The PMT sensor, the rank-local clock it samples on, and the
        sampling period in simulated seconds.
    telemetry:
        Optional :class:`~repro.telemetry.TraceCollector`; every sample
        is mirrored as a ``power`` counter event for ``rank``.
    rank:
        Track identity of the emitted counter events.
    monitor:
        Optional :class:`~repro.monitor.Monitor` (or bare
        :class:`~repro.monitor.DeviceSampler`): every sample feeds the
        live ``pmt_power_w`` series and bridged gaps feed the same
        ``sampler_gap`` alert rule the device sampler uses.
    """

    def __init__(
        self,
        sensor: PMT,
        clock: VirtualClock,
        period_s: float = 0.1,
        telemetry=None,
        rank: int = 0,
        monitor=None,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError("sampling period must be positive")
        self._sensor = sensor
        self._clock = clock
        self.period_s = period_s
        self.samples: List[Sample] = []
        self._running = False
        self._last: Optional[State] = None
        self._telemetry = telemetry
        self._rank = rank
        # Accept the Monitor facade or a bare DeviceSampler.
        self._monitor = getattr(monitor, "sampler", monitor)
        self._segment_start_j = 0.0
        self._segment_start_t = 0.0
        #: Bridged sampling gaps as ``(start_s, end_s)`` intervals.
        self.gaps: List[Tuple[float, float]] = []
        #: Sensor reads that raised :class:`PowerReadError`.
        self.failed_reads = 0
        #: Readings clamped by the monotonicity guard.
        self.monotonicity_violations = 0
        self._gap_start: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._running

    @property
    def in_gap(self) -> bool:
        """Is the sampler currently bridging failed reads?"""
        return self._gap_start is not None

    @property
    def next_tick_s(self) -> float:
        """Timestamp of the next grid tick the sampler will record.

        The sampling grid accumulates ``period_s`` from the start
        time, so consumers that want a measurement window to begin
        exactly on a recorded sample (e.g. the calibration sweep of
        :mod:`repro.catalog.fit`) should idle the clock up to this
        instant rather than recompute the grid themselves.
        """
        if self._last is None:
            raise RuntimeError("sampler is not running")
        return self._last.timestamp_s + self.period_s

    def start(self) -> None:
        """Begin sampling (takes an immediate first reading).

        Construct/start the sampler *after* the devices are attached to
        the clock so its listener observes post-update counter values.

        The first reading happens *before* the sampler marks itself
        running: if the sensor is already broken at start, the error
        propagates and the sampler can be started again once the sensor
        recovers (it does not wedge in a half-started state).
        """
        if self._running:
            raise RuntimeError("sampler is already running")
        first = self._sensor.read()
        self._running = True
        self._last = State(self._clock.now, first.joules, 0.0)
        self._segment_start_j = first.joules
        self._segment_start_t = self._clock.now
        self._record(Sample(self._clock.now, first.joules, 0.0))
        self._clock.subscribe(self._on_advance)

    def stop(self) -> List[Sample]:
        """Stop sampling and return the collected series."""
        if not self._running:
            raise RuntimeError("sampler is not running")
        self._clock.unsubscribe(self._on_advance)
        self._running = False
        if self._gap_start is not None:
            # The sensor never recovered: close the gap at stop time.
            self._close_gap(self._clock.now)
        return list(self.samples)

    def _record(self, sample: Sample) -> None:
        self.samples.append(sample)
        if self._telemetry is not None:
            self._telemetry.emit_counter_sample(
                "power",
                self._rank,
                {"watts": sample.watts, "joules": sample.joules},
                ts=sample.timestamp_s,
            )
        if self._monitor is not None:
            self._monitor.observe_external(
                "pmt_power_w", self._rank, sample.timestamp_s, sample.watts
            )

    def _close_gap(self, end_t: float) -> None:
        assert self._gap_start is not None
        gap = (self._gap_start, end_t)
        self.gaps.append(gap)
        self._gap_start = None
        if self._telemetry is not None:
            self._telemetry.record_power_gap(
                self._rank, gap[0], gap[1], reason="power read failed"
            )
        if self._monitor is not None:
            self._monitor.observe_external_gap(self._rank, gap[0], gap[1])

    def _on_advance(self, t0: float, t1: float) -> None:
        assert self._last is not None
        # Subscribed after the devices: this read carries the t1 value;
        # power is piecewise constant over the advance, so ticks inside
        # it interpolate exactly.
        try:
            end_j = self._sensor.read().joules
        except PowerReadError:
            # Leave the pending ticks unplayed; they are back-filled by
            # interpolation over the whole gap on the next good read.
            self.failed_reads += 1
            if self._gap_start is None:
                self._gap_start = t0
            return
        if self._gap_start is not None:
            self._close_gap(t1)
        if end_j < self._segment_start_j:
            # A counter must not run backwards; clamp the reading so the
            # derived power can never go negative from one bad sample.
            self.monotonicity_violations += 1
            end_j = self._segment_start_j
        # Interpolation spans the segment since the last *good* read —
        # identical to [t0, t1] when no reads failed in between.
        start_j = self._segment_start_j
        start_t = self._segment_start_t
        span = t1 - start_t
        next_tick = self._last.timestamp_s + self.period_s
        while next_tick <= t1 + 1e-12:
            frac = 0.0 if span <= 0 else (next_tick - start_t) / span
            joules = start_j + (end_j - start_j) * frac
            dt = next_tick - self._last.timestamp_s
            watts = (joules - self._last.joules) / dt if dt > 0 else 0.0
            self._record(Sample(next_tick, joules, watts))
            self._last = State(next_tick, joules, watts)
            next_tick += self.period_s
        self._segment_start_j = end_j
        self._segment_start_t = t1

    # -- dump-file support ---------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the series as versioned PMT-dump-style text lines.

        The header line carries the shared schema version; payload
        floats use ``repr`` formatting so :meth:`load_dump` round-trips
        every sample exactly.
        """
        header = schema_header(
            "pmt-dump", columns=list(DUMP_COLUMNS), period_s=self.period_s
        )
        with open(path, "w", encoding="ascii") as fh:
            fh.write("# " + json.dumps(header, sort_keys=True) + "\n")
            fh.write("# " + " ".join(DUMP_COLUMNS) + "\n")
            for s in self.samples:
                fh.write(f"{s.timestamp_s!r} {s.joules!r} {s.watts!r}\n")

    @staticmethod
    def load_dump(path: str) -> List[Sample]:
        """Read a file written by :meth:`dump` (legacy headerless too)."""
        samples = []
        with open(path, encoding="ascii") as fh:
            for i, line in enumerate(fh):
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith("#"):
                    body = stripped[1:].strip()
                    if i == 0 and body.startswith("{"):
                        check_schema_header(json.loads(body), "pmt-dump")
                    continue
                t, j, w = stripped.split()
                samples.append(Sample(float(t), float(j), float(w)))
        return samples
