"""PMT — Power Measurement Toolkit reimplementation (DESIGN.md §2).

The factory :func:`create` mirrors PMT's ``pmt::Create(name, ...)``:

>>> sensor = create("nvml", device_index=0)        # doctest: +SKIP
>>> begin = sensor.read()                          # doctest: +SKIP
>>> ...                                            # doctest: +SKIP
>>> end = sensor.read()                            # doctest: +SKIP
>>> PMT.joules(begin, end)                         # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any

from .base import PMT, PowerReadError, State
from .cray_backend import CrayPMT
from .dummy import DummyPMT
from .levelzero_backend import LevelZeroPMT
from .nvml_backend import NvmlPMT
from .rapl_backend import RAPL_ENERGY_UNIT_J, RaplCounter, RaplPMT
from .rocm_backend import RocmPMT
from .sampler import PmtSampler, Sample

_BACKENDS = {
    "nvml": NvmlPMT,
    "levelzero": LevelZeroPMT,
    "xpu": LevelZeroPMT,
    "rocm": RocmPMT,
    "rapl": RaplPMT,
    "likwid": RaplPMT,  # LIKWID's power daemon also reads RAPL MSRs.
    "cray": CrayPMT,
    "dummy": DummyPMT,
}


def create(platform: str, **kwargs: Any) -> PMT:
    """Instantiate a PMT sensor by backend name.

    Parameters mirror each backend's constructor, e.g.
    ``create("nvml", device_index=0)`` or
    ``create("cray", counters=pm, counter="accel0_energy", clock=clk)``.
    """
    try:
        backend = _BACKENDS[platform]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(
            f"unknown PMT platform {platform!r} (known: {known})"
        ) from None
    return backend(**kwargs)


__all__ = [
    "PMT",
    "PowerReadError",
    "State",
    "create",
    "CrayPMT",
    "DummyPMT",
    "LevelZeroPMT",
    "NvmlPMT",
    "RaplPMT",
    "RaplCounter",
    "RAPL_ENERGY_UNIT_J",
    "RocmPMT",
    "PmtSampler",
    "Sample",
]
