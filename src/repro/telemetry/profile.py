"""Distributed-trace shards, merging, and the profiling analysis layer.

One traced run produces **per-process JSONL shards**: each rank worker
(under the ``process`` comm backend) or the parent itself (``local``
backend) persists the events belonging to its rank, stamped with the
run's :class:`~repro.telemetry.context.TraceContext`. Shard writes are
atomic (temp file + ``os.replace``), so a SIGKILL'd process leaves
either no shard or a complete one — never a torn file.

Sharding is **by rank, not by accident of process layout**: the same
event lands in the same shard under both comm backends, and every
timestamp is rank-local virtual time, so ``merge_shards`` produces a
byte-identical merged trace whichever backend executed the run. That
determinism is what makes cross-backend and pre/post-change trace
diffs meaningful.

On top of the merged trace this module implements the analysis layer:

* :func:`critical_path` — which rank gated each step (latest arrival
  at the step's trailing collective), with per-rank slack, consistent
  with :attr:`~repro.mpi.comm.CommStats.rank_wait_s`;
* :func:`attribution_table` — per-kernel x per-rank time/energy rows
  reconciled against the :class:`~repro.core.energy.EnergyReport`;
* :func:`collapsed_stacks` — flamegraph-compatible collapsed-stack
  export (``rank N;Function <microseconds>``);
* :func:`diff_traces` — two-run comparison that flags per-function
  regressions above a threshold.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .chrome_trace import atomic_write_lines, write_trace_jsonl
from .context import TraceContext
from .events import (
    TRACK_CLOCKS,
    TRACK_COUNTERS,
    TRACK_FUNCTIONS,
    TRACK_JOB,
    SpanEvent,
    TraceEvent,
    check_schema_header,
    event_sort_key,
    from_record,
    schema_header,
    to_record,
)

#: ``kind`` field of a per-process shard file's schema header.
SHARD_KIND = "trace-shard"

#: File name of the merged, clock-aligned trace inside a trace dir.
MERGED_TRACE_NAME = "merged.jsonl"

#: Shard holding events that belong to no single rank's execution
#: (job-track phases, fault instants emitted by the parent).
MAIN_SHARD = "main"

#: Tracks whose events belong to the rank that produced them and are
#: therefore recorded in (and persisted by) that rank's shard.
RANK_TRACKS = (TRACK_FUNCTIONS, TRACK_COUNTERS, TRACK_CLOCKS)

#: Name of the per-rank lifetime span each rank shard carries.
RANK_PROCESS_SPAN = "rank-process"

#: Relative regression threshold of :func:`diff_traces`.
DEFAULT_DIFF_THRESHOLD = 0.02


# ---------------------------------------------------------------------------
# Shard partitioning and persistence
# ---------------------------------------------------------------------------

def shard_name_for(event: TraceEvent) -> str:
    """Shard an event belongs to (by rank for rank-owned tracks)."""
    if event.track in RANK_TRACKS:
        return f"rank-{event.rank}"
    return MAIN_SHARD


def partition_events(
    events: Iterable[TraceEvent],
) -> Dict[str, List[TraceEvent]]:
    """Group events into shards, each internally sorted."""
    shards: Dict[str, List[TraceEvent]] = {}
    for event in events:
        shards.setdefault(shard_name_for(event), []).append(event)
    for bucket in shards.values():
        bucket.sort(key=event_sort_key)
    return shards


def rank_process_span(
    context: TraceContext,
    rank_context: TraceContext,
    rank: int,
    events: Sequence[TraceEvent],
) -> Optional[SpanEvent]:
    """The rank's own lifetime span, covering its shard's window.

    Derived purely from the (deterministic) rank context and the
    virtual-time window of the rank's events, so the local and process
    backends synthesize identical spans.
    """
    if not events:
        return None
    t0 = min(e.ts_s for e in events)
    t1 = max(
        e.t1_s if isinstance(e, SpanEvent) else e.ts_s for e in events
    )
    return SpanEvent(
        name=RANK_PROCESS_SPAN,
        rank=rank,
        t0_s=t0,
        t1_s=t1,
        track=TRACK_JOB,
        args={
            "trace_id": context.trace_id,
            "span_id": rank_context.span_id,
            "parent_span_id": context.span_id,
        },
    )


def shard_header(
    context: TraceContext, shard: str, n_events: int
) -> Dict[str, Any]:
    """Schema header of one shard file."""
    header = schema_header(
        SHARD_KIND,
        shard=shard,
        events=n_events,
        trace_id=context.trace_id,
        span_id=context.span_id,
    )
    if context.parent_span_id is not None:
        header["parent_span_id"] = context.parent_span_id
    return header


def shard_lines(
    context: TraceContext, shard: str, events: Sequence[TraceEvent]
) -> List[str]:
    """Serialized shard content: header line + one line per event.

    This is the exact byte payload a rank worker receives over its
    duplex pipe and persists; computing it in one place guarantees the
    parent (local backend) and the workers (process backend) write
    identical shards.
    """
    lines = [json.dumps(shard_header(context, shard, len(events)),
                        sort_keys=True)]
    lines.extend(
        json.dumps(to_record(e), sort_keys=True) for e in events
    )
    return lines


def write_shard(path: str, lines: Sequence[str]) -> None:
    """Atomically persist one shard (temp file + ``os.replace``)."""
    atomic_write_lines(path, lines)


def read_trace_shard(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Read one shard back as ``(header, events)``; strict like
    :func:`~repro.telemetry.chrome_trace.read_trace_jsonl`."""
    header: Optional[Dict[str, Any]] = None
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if header is None:
                try:
                    check_schema_header(record, SHARD_KIND)
                except (KeyError, ValueError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{lineno}: bad shard header ({exc})"
                    ) from None
                header = dict(record)
                continue
            try:
                events.append(from_record(record))
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad shard record ({exc})"
                ) from None
    if header is None:
        raise ValueError(f"{path}: empty trace shard")
    return header, events


def shard_paths(shard_dir: str) -> List[str]:
    """Shard files of a trace dir, name-sorted (excludes the merge)."""
    try:
        names = sorted(os.listdir(shard_dir))
    except FileNotFoundError:
        return []
    return [
        os.path.join(shard_dir, name)
        for name in names
        if name.endswith(".jsonl") and name != MERGED_TRACE_NAME
    ]


def merge_shards(
    shard_dir: str,
) -> Tuple[Optional[str], List[TraceEvent]]:
    """Merge every shard of a trace dir into one clock-aligned trace.

    Returns ``(trace_id, events)`` with events in the canonical
    :func:`~repro.telemetry.events.event_sort_key` order. All shards
    must agree on the trace id (they came from one request).
    """
    trace_id: Optional[str] = None
    merged: List[TraceEvent] = []
    for path in shard_paths(shard_dir):
        header, events = read_trace_shard(path)
        shard_trace = header.get("trace_id")
        if trace_id is None:
            trace_id = shard_trace
        elif shard_trace is not None and shard_trace != trace_id:
            raise ValueError(
                f"{path}: shard belongs to trace {shard_trace!r}, "
                f"expected {trace_id!r}"
            )
        merged.extend(events)
    merged.sort(key=event_sort_key)
    return trace_id, merged


def write_merged_trace(
    path: str,
    events: Iterable[TraceEvent],
    trace_id: Optional[str] = None,
) -> None:
    """Persist the merged trace (atomic; standard ``trace`` JSONL, so
    ``repro trace export`` and :func:`read_trace_jsonl` load it)."""
    extra: Dict[str, Any] = {}
    if trace_id is not None:
        extra["trace_id"] = trace_id
    write_trace_jsonl(path, events, **extra)


def merged_trace_path(shard_dir: str) -> str:
    return os.path.join(shard_dir, MERGED_TRACE_NAME)


def collect_trace(shard_dir: str) -> Tuple[Optional[str], str]:
    """Merge a trace dir's shards and persist the merged trace.

    Returns ``(trace_id, merged_path)`` — the parent-side collection
    step after a run's shards are flushed.
    """
    trace_id, events = merge_shards(shard_dir)
    path = merged_trace_path(shard_dir)
    write_merged_trace(path, events, trace_id=trace_id)
    return trace_id, path


# ---------------------------------------------------------------------------
# Critical-path extraction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StepCritical:
    """Who gated one step: the rank every other rank waited for."""

    step: int
    gating_rank: int
    #: Latest per-rank arrival at the step's end, rank -> t1 seconds.
    arrival_s: Dict[int, float] = field(default_factory=dict)
    #: Summed kernel busy time of the step, rank -> seconds.
    busy_s: Dict[int, float] = field(default_factory=dict)

    @property
    def slack_s(self) -> Dict[int, float]:
        """Idle time each rank spent waiting for the gating rank."""
        latest = self.arrival_s[self.gating_rank]
        return {r: latest - t for r, t in self.arrival_s.items()}


def critical_path(events: Iterable[TraceEvent]) -> List[StepCritical]:
    """Per-step gating analysis over the kernel spans of a trace.

    The gating rank of a step is the one arriving *last* at the step's
    end (max span ``t1``) — exactly the rank that accrues the least
    :attr:`~repro.mpi.comm.CommStats.rank_wait_s` at the trailing
    collectives, since everyone else waits for it. Ties break to the
    lowest rank, mirroring the deterministic collective ordering.
    """
    arrivals: Dict[int, Dict[int, float]] = {}
    busy: Dict[int, Dict[int, float]] = {}
    for event in events:
        if not isinstance(event, SpanEvent):
            continue
        if event.track != TRACK_FUNCTIONS:
            continue
        step = event.args.get("step")
        if step is None:
            continue
        step = int(step)
        step_arrivals = arrivals.setdefault(step, {})
        step_arrivals[event.rank] = max(
            step_arrivals.get(event.rank, float("-inf")), event.t1_s
        )
        step_busy = busy.setdefault(step, {})
        step_busy[event.rank] = (
            step_busy.get(event.rank, 0.0) + event.duration_s
        )
    out: List[StepCritical] = []
    for step in sorted(arrivals):
        step_arrivals = arrivals[step]
        latest = max(step_arrivals.values())
        gating = min(
            r for r, t in step_arrivals.items() if t == latest
        )
        out.append(
            StepCritical(
                step=step,
                gating_rank=gating,
                arrival_s=dict(sorted(step_arrivals.items())),
                busy_s=dict(sorted(busy[step].items())),
            )
        )
    return out


def gating_consistent_with_waits(
    steps: Sequence[StepCritical],
    rank_wait_s: Sequence[float],
    tol_s: float = 1e-9,
) -> bool:
    """Cross-check the critical path against communicator waits.

    The rank that gates most often arrives last most often, so it must
    carry the *minimum* accumulated collective wait. Vacuously true
    when either side is empty.
    """
    if not steps or not rank_wait_s:
        return True
    counts: Dict[int, int] = {}
    for step in steps:
        counts[step.gating_rank] = counts.get(step.gating_rank, 0) + 1
    most_gating = min(
        counts, key=lambda r: (-counts[r], r)
    )
    if most_gating >= len(rank_wait_s):
        return False
    return rank_wait_s[most_gating] <= min(rank_wait_s) + tol_s


# ---------------------------------------------------------------------------
# Per-kernel x per-rank attribution
# ---------------------------------------------------------------------------

def attribution_table(
    events: Iterable[TraceEvent], report: Optional[Any] = None
) -> List[Dict[str, Any]]:
    """Per-function, per-rank time/energy attribution rows.

    Span durations come from the trace; energy (and the reconciliation
    drift column) from the :class:`~repro.core.energy.EnergyReport`'s
    per-rank records when one is given. Rows sort by descending traced
    time, then function name, then rank.
    """
    acc: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for event in events:
        if not isinstance(event, SpanEvent):
            continue
        if event.track != TRACK_FUNCTIONS:
            continue
        row = acc.setdefault(
            (event.name, event.rank),
            {
                "function": event.name,
                "rank": event.rank,
                "calls": 0,
                "time_s": 0.0,
            },
        )
        row["calls"] += 1
        row["time_s"] += event.duration_s
    if report is not None:
        for rank_report in report.ranks:
            for name, rec in rank_report.records.items():
                row = acc.get((name, rank_report.rank))
                if row is None:
                    row = acc.setdefault(
                        (name, rank_report.rank),
                        {
                            "function": name,
                            "rank": rank_report.rank,
                            "calls": 0,
                            "time_s": 0.0,
                        },
                    )
                row["gpu_j"] = rec.gpu_j
                row["total_j"] = rec.total_j
                row["report_time_s"] = rec.time_s
                row["drift_s"] = abs(row["time_s"] - rec.time_s)
    return sorted(
        acc.values(),
        key=lambda r: (-r["time_s"], r["function"], r["rank"]),
    )


def render_attribution(rows: Sequence[Mapping[str, Any]]) -> str:
    """Plain-text table of :func:`attribution_table` rows."""
    lines = [
        f"{'function':<22}{'rank':>5}{'calls':>7}{'time_s':>12}"
        f"{'gpu_j':>12}{'total_j':>12}{'drift_s':>12}"
    ]
    for row in rows:
        gpu = row.get("gpu_j")
        total = row.get("total_j")
        drift = row.get("drift_s")
        lines.append(
            f"{row['function']:<22}{row['rank']:>5}{row['calls']:>7}"
            f"{row['time_s']:>12.6f}"
            + (f"{gpu:>12.2f}" if gpu is not None else f"{'-':>12}")
            + (f"{total:>12.2f}" if total is not None else f"{'-':>12}")
            + (f"{drift:>12.2e}" if drift is not None else f"{'-':>12}")
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Collapsed-stack (flamegraph) export
# ---------------------------------------------------------------------------

def collapsed_stacks(
    events: Iterable[TraceEvent], scale: float = 1e6
) -> List[str]:
    """Flamegraph-compatible collapsed stacks from kernel spans.

    Each line is ``rank N;Function <value>`` with the value in
    microseconds of simulated time (flamegraph samples are integral).
    Feed the lines to ``flamegraph.pl`` or speedscope directly.
    """
    totals: Dict[Tuple[int, str], float] = {}
    for event in events:
        if not isinstance(event, SpanEvent):
            continue
        if event.track != TRACK_FUNCTIONS:
            continue
        key = (event.rank, event.name)
        totals[key] = totals.get(key, 0.0) + event.duration_s
    return [
        f"rank {rank};{name} {int(round(seconds * scale))}"
        for (rank, name), seconds in sorted(totals.items())
    ]


# ---------------------------------------------------------------------------
# Two-run diff
# ---------------------------------------------------------------------------

def _function_times(events: Iterable[TraceEvent]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for event in events:
        if isinstance(event, SpanEvent) and event.track == TRACK_FUNCTIONS:
            out[event.name] = out.get(event.name, 0.0) + event.duration_s
    return out


def diff_traces(
    a_events: Iterable[TraceEvent],
    b_events: Iterable[TraceEvent],
    threshold: float = DEFAULT_DIFF_THRESHOLD,
) -> Dict[str, Any]:
    """Compare two traces per function; flag regressions above
    ``threshold`` (relative increase of b over a).

    Functions present in only one trace show ``0.0`` on the other side
    and are flagged when they *appear* with nonzero time (a new cost is
    a regression by definition; a vanished one is an improvement).
    """
    a_times = _function_times(a_events)
    b_times = _function_times(b_events)
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for name in sorted(set(a_times) | set(b_times)):
        t_a = a_times.get(name, 0.0)
        t_b = b_times.get(name, 0.0)
        if t_a > 0.0:
            delta_frac = (t_b - t_a) / t_a
        elif t_b > 0.0:
            delta_frac = float("inf")
        else:
            delta_frac = 0.0
        regressed = delta_frac > threshold
        rows.append(
            {
                "function": name,
                "time_a_s": t_a,
                "time_b_s": t_b,
                "delta_frac": delta_frac,
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(name)
    total_a = sum(a_times.values())
    total_b = sum(b_times.values())
    total_delta = (
        (total_b - total_a) / total_a if total_a > 0.0
        else (float("inf") if total_b > 0.0 else 0.0)
    )
    return {
        "functions": rows,
        "total_a_s": total_a,
        "total_b_s": total_b,
        "total_delta_frac": total_delta,
        "threshold": threshold,
        "regressions": regressions,
    }
