"""Trace roll-ups and trace-vs-report reconciliation.

The summary layer answers two questions about a recorded run:

1. *What happened?* — per-function span roll-ups (count, total, mean,
   min, max) and the metrics snapshot.
2. *Can the trace be trusted?* — the summed span durations per function
   are reconciled against the :class:`~repro.core.energy.EnergyReport`
   the profiler gathered independently. Both observers read the same
   rank-local clocks through the same hook windows, so any drift above
   float-sum noise is an instrumentation bug. This mirrors the paper's
   own cross-validation of PMT against Slurm accounting (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..reporting import render_table
from .events import TRACK_FUNCTIONS, SpanEvent, TraceEvent

#: Allowed trace-vs-report drift: pure float-summation noise.
RECONCILE_TOL_S = 1e-6


@dataclass(frozen=True)
class FunctionTraceSummary:
    """Roll-up of every span of one function across ranks and steps."""

    function: str
    spans: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.spans if self.spans else 0.0


def summarize_functions(
    events: Iterable[TraceEvent],
) -> Dict[str, FunctionTraceSummary]:
    """Per-function span roll-ups from a trace, keyed by function name."""
    acc: Dict[str, List[float]] = {}
    for event in events:
        if isinstance(event, SpanEvent) and event.track == TRACK_FUNCTIONS:
            acc.setdefault(event.name, []).append(event.duration_s)
    return {
        name: FunctionTraceSummary(
            function=name,
            spans=len(durations),
            total_s=sum(durations),
            min_s=min(durations),
            max_s=max(durations),
        )
        for name, durations in acc.items()
    }


@dataclass(frozen=True)
class ReconciliationRow:
    """Trace-vs-report comparison for one function."""

    function: str
    trace_time_s: float
    report_time_s: float

    @property
    def drift_s(self) -> float:
        return self.trace_time_s - self.report_time_s

    def ok(self, tol_s: float = RECONCILE_TOL_S) -> bool:
        return abs(self.drift_s) <= tol_s


def reconcile_with_report(
    events: Iterable[TraceEvent], report
) -> List[ReconciliationRow]:
    """Compare summed span time per function against an energy report.

    ``report`` is any object with the
    :meth:`~repro.core.energy.EnergyReport.aggregate_functions` shape.
    Functions present on only one side appear with ``0.0`` on the other
    (a completeness failure the caller can assert on).
    """
    traced = summarize_functions(events)
    reported = report.aggregate_functions()
    rows = []
    for name in sorted(set(traced) | set(reported)):
        trace_s = traced[name].total_s if name in traced else 0.0
        report_s = reported[name].time_s if name in reported else 0.0
        rows.append(
            ReconciliationRow(
                function=name, trace_time_s=trace_s, report_time_s=report_s
            )
        )
    return rows


def max_drift_s(rows: Iterable[ReconciliationRow]) -> float:
    """Largest absolute trace-vs-report drift across functions."""
    return max((abs(r.drift_s) for r in rows), default=0.0)


def render_summary(collector, report=None) -> str:
    """Human-readable summary: metrics snapshot, roll-ups, reconciliation.

    ``collector`` is a :class:`~repro.telemetry.collector.TraceCollector`;
    ``report`` an optional gathered :class:`EnergyReport` to reconcile
    against. This is what ``repro trace summary`` prints.
    """
    sections: List[str] = []
    snapshot = collector.metrics.snapshot()

    counter_rows = [[k, f"{v:g}"] for k, v in snapshot["counters"].items()]
    for name in ("clock_set_calls", "clock_set_skipped"):
        total = collector.metrics.counter_total(name)
        counter_rows.append([f"{name} (total)", f"{total:g}"])
    sections.append(
        render_table(["counter", "value"], counter_rows, title="counters")
    )

    if snapshot["gauges"]:
        gauge_rows = [[k, f"{v:g}"] for k, v in snapshot["gauges"].items()]
        sections.append(
            render_table(["gauge", "value"], gauge_rows, title="gauges")
        )

    hist_rows = [
        [k, h["count"], f"{h['sum']:.4f}", f"{h['mean']:.4f}",
         f"{h['min']:.4f}", f"{h['max']:.4f}"]
        for k, h in snapshot["histograms"].items()
        if h["count"]
    ]
    if hist_rows:
        sections.append(
            render_table(
                ["histogram", "count", "sum", "mean", "min", "max"],
                hist_rows,
                title="histograms",
            )
        )

    summaries = summarize_functions(collector.events)
    if summaries:
        fn_rows = [
            [s.function, s.spans, f"{s.total_s:.4f}", f"{s.mean_s:.4f}"]
            for s in sorted(
                summaries.values(), key=lambda s: -s.total_s
            )
        ]
        sections.append(
            render_table(
                ["function", "spans", "total [s]", "mean [s]"],
                fn_rows,
                title="per-function trace roll-up",
            )
        )

    if report is not None:
        rows = reconcile_with_report(collector.events, report)
        rec_rows = [
            [r.function, f"{r.trace_time_s:.6f}", f"{r.report_time_s:.6f}",
             f"{r.drift_s:+.2e}", "ok" if r.ok() else "DRIFT"]
            for r in rows
        ]
        sections.append(
            render_table(
                ["function", "trace [s]", "report [s]", "drift [s]", ""],
                rec_rows,
                title="trace vs EnergyReport reconciliation",
            )
        )
        sections.append(
            f"max trace-vs-report drift: {max_drift_s(rows):.2e} s "
            f"(tolerance {RECONCILE_TOL_S:g} s)"
        )

    if collector.dropped:
        sections.append(
            f"warning: ring buffer overflowed, {collector.dropped} oldest "
            "events dropped (raise max_events for full traces)"
        )
    return "\n\n".join(sections)
