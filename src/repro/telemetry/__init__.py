"""repro.telemetry — structured tracing and metrics for instrumented runs.

The paper's contribution is *observability of energy behaviour*:
per-function, per-device measurement through SPH-EXA's hook points
(§III-B) plus NVML clock instrumentation (§III-D). This package turns
those point measurements into analyzable runs, Score-P-style:

* :mod:`~repro.telemetry.events` — typed trace events (spans, instants,
  counter samples) with per-rank/per-track identity and monotonic
  simulated timestamps, plus the shared ``{"schema": 1}`` file header;
* :mod:`~repro.telemetry.metrics` — labeled counters/gauges/histograms
  with a ``snapshot()`` API;
* :mod:`~repro.telemetry.collector` — the bounded ring-buffer
  :class:`TraceCollector`, a drop-in ``FunctionHook`` plus explicit
  emit APIs for the frequency controller, PMT sampler and Slurm
  scheduler;
* :mod:`~repro.telemetry.chrome_trace` — lossless export to Chrome
  ``trace_event`` JSON (Perfetto / ``chrome://tracing``) and compact
  JSONL for programmatic diffing;
* :mod:`~repro.telemetry.summary` — roll-ups and the
  trace-vs-:class:`EnergyReport` reconciliation check;
* :mod:`~repro.telemetry.context` — W3C-traceparent-style
  :class:`TraceContext` correlating spans across process boundaries
  (service request → campaign lane → rank worker), deterministically
  derived so traces stay bit-stable;
* :mod:`~repro.telemetry.profile` — per-process trace shards, the
  merged clock-aligned trace, and the analysis layer (critical path,
  per-kernel × per-rank attribution, flamegraph export, run diffs).

Telemetry is strictly opt-in: without a collector no extra hooks are
registered and a run's reported numbers are bit-for-bit unchanged.

Quickstart::

    from repro.systems import Cluster, mini_hpc
    from repro.sph import run_instrumented
    from repro.telemetry import TraceCollector, write_chrome_trace

    cluster = Cluster(mini_hpc(), n_ranks=1)
    trace = TraceCollector.for_cluster(cluster)
    result = run_instrumented(
        cluster, "SedovBlast", 1e6, n_steps=4, telemetry=trace
    )
    write_chrome_trace("run.json", trace.events)  # open in Perfetto
"""

from .chrome_trace import (
    atomic_write_lines,
    read_trace_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from .collector import DEFAULT_MAX_EVENTS, TraceCollector
from .context import TraceContext, mint_context
from .events import (
    SCHEMA_VERSION,
    TRACK_CLOCKS,
    TRACK_COUNTERS,
    TRACK_FAULTS,
    TRACK_FUNCTIONS,
    TRACK_JOB,
    TRACKS,
    CounterEvent,
    InstantEvent,
    SpanEvent,
    TraceEvent,
    check_schema_header,
    from_record,
    schema_header,
    to_record,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    MERGED_TRACE_NAME,
    SHARD_KIND,
    StepCritical,
    attribution_table,
    collapsed_stacks,
    collect_trace,
    critical_path,
    diff_traces,
    gating_consistent_with_waits,
    merge_shards,
    merged_trace_path,
    read_trace_shard,
    render_attribution,
    write_merged_trace,
)
from .summary import (
    RECONCILE_TOL_S,
    FunctionTraceSummary,
    ReconciliationRow,
    max_drift_s,
    reconcile_with_report,
    render_summary,
    summarize_functions,
)

__all__ = [
    "SCHEMA_VERSION",
    "TRACKS",
    "TRACK_FUNCTIONS",
    "TRACK_CLOCKS",
    "TRACK_COUNTERS",
    "TRACK_JOB",
    "TRACK_FAULTS",
    "SpanEvent",
    "InstantEvent",
    "CounterEvent",
    "TraceEvent",
    "to_record",
    "from_record",
    "schema_header",
    "check_schema_header",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceCollector",
    "DEFAULT_MAX_EVENTS",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "atomic_write_lines",
    "TraceContext",
    "mint_context",
    "SHARD_KIND",
    "MERGED_TRACE_NAME",
    "StepCritical",
    "read_trace_shard",
    "merge_shards",
    "merged_trace_path",
    "collect_trace",
    "write_merged_trace",
    "critical_path",
    "gating_consistent_with_waits",
    "attribution_table",
    "render_attribution",
    "collapsed_stacks",
    "diff_traces",
    "FunctionTraceSummary",
    "ReconciliationRow",
    "RECONCILE_TOL_S",
    "summarize_functions",
    "reconcile_with_report",
    "max_drift_s",
    "render_summary",
]
