"""Trace export: Chrome ``trace_event`` JSON and compact JSONL.

The Chrome export is lossless and loads directly in Perfetto or
``chrome://tracing``: one *process* per MPI rank, with named *threads*
for the step-function spans (kernels), the application-clock events,
the power counters and the Slurm job phases. Timestamps convert from
simulated seconds to the format's microseconds; events are emitted in
non-decreasing ``ts`` order.

The JSONL export is the programmatic sibling: a versioned
``{"schema": 1, "kind": "trace"}`` header followed by one compact
record per event (phase letters matching the Chrome convention), which
``repro trace export`` can later re-render as Chrome JSON and tests can
diff line-by-line.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .events import (
    TRACKS,
    CounterEvent,
    InstantEvent,
    SpanEvent,
    TraceEvent,
    check_schema_header,
    event_sort_key,
    from_record,
    schema_header,
    to_record,
)

#: Fixed thread ids per track, so the Perfetto layout is stable.
TRACK_TIDS: Dict[str, int] = {track: tid for tid, track in enumerate(TRACKS)}

_SECONDS_TO_US = 1e6


def _metadata_events(ranks: Sequence[int], tracks: Sequence[str]) -> List[dict]:
    """Process/thread naming metadata (``ph: "M"`` records)."""
    meta: List[dict] = []
    for rank in ranks:
        meta.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        meta.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": rank},
            }
        )
        for track in tracks:
            tid = TRACK_TIDS.get(track, len(TRACK_TIDS))
            meta.append(
                {
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
    return meta


def to_chrome_trace(
    events: Iterable[TraceEvent], label: Optional[str] = None
) -> Dict[str, Any]:
    """Render events as a Chrome ``trace_event`` JSON object."""
    ordered = sorted(events, key=event_sort_key)
    ranks = sorted({e.rank for e in ordered})
    tracks = sorted(
        {e.track for e in ordered},
        key=lambda t: TRACK_TIDS.get(t, len(TRACK_TIDS)),
    )
    trace_events: List[dict] = _metadata_events(ranks, tracks)
    for event in ordered:
        tid = TRACK_TIDS.get(event.track, len(TRACK_TIDS))
        if isinstance(event, SpanEvent):
            record = {
                "ph": "X",
                "pid": event.rank,
                "tid": tid,
                "name": event.name,
                "cat": event.track,
                "ts": event.t0_s * _SECONDS_TO_US,
                "dur": event.duration_s * _SECONDS_TO_US,
            }
            if event.args:
                record["args"] = dict(event.args)
        elif isinstance(event, InstantEvent):
            record = {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": event.rank,
                "tid": tid,
                "name": event.name,
                "cat": event.track,
                "ts": event.ts_s * _SECONDS_TO_US,
            }
            if event.args:
                record["args"] = dict(event.args)
        elif isinstance(event, CounterEvent):
            record = {
                "ph": "C",
                "pid": event.rank,
                "tid": tid,
                "name": event.name,
                "cat": event.track,
                "ts": event.ts_s * _SECONDS_TO_US,
                "args": dict(event.values),
            }
        else:  # pragma: no cover - exhaustive over TraceEvent
            raise TypeError(f"not a trace event: {event!r}")
        trace_events.append(record)
    payload: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": schema_header("chrome-trace"),
    }
    if label is not None:
        payload["otherData"]["label"] = label
    return payload


def write_chrome_trace(
    path: str, events: Iterable[TraceEvent], label: Optional[str] = None
) -> None:
    """Write a Chrome/Perfetto-loadable ``trace_event`` JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events, label=label), fh, indent=1)


def atomic_write_lines(path: str, lines: Sequence[str]) -> None:
    """Write text lines atomically: temp file + fsync + ``os.replace``.

    Same idiom as the ``metrics.prom`` writer — a reader (or a process
    killed mid-write) sees either the previous complete file or the new
    complete file, never a torn one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line)
                fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_trace_jsonl(
    path: str, events: Iterable[TraceEvent], **extra: Any
) -> None:
    """Atomically write the compact JSONL export (schema header + one
    line per event). Keyword extras (e.g. ``trace_id``) land in the
    header; readers tolerate the additional keys."""
    ordered = sorted(events, key=event_sort_key)
    lines = [
        json.dumps(
            schema_header("trace", events=len(ordered), **extra),
            sort_keys=True,
        )
    ]
    lines.extend(json.dumps(to_record(e), sort_keys=True) for e in ordered)
    atomic_write_lines(path, lines)


def read_trace_jsonl(path: str) -> List[TraceEvent]:
    """Read a JSONL trace back into typed events.

    Tolerates blank lines (hand-edited or concatenated files); every
    other malformation raises :class:`ValueError` naming the file and
    line — a truncated record, a missing or mismatched schema header,
    or a record the event model cannot rebuild.
    """
    events: List[TraceEvent] = []
    header_seen = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if not header_seen:
                try:
                    check_schema_header(record, "trace")
                except (KeyError, ValueError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{lineno}: bad trace header ({exc})"
                    ) from None
                header_seen = True
                continue
            try:
                events.append(from_record(record))
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad trace record ({exc})"
                ) from None
    if not header_seen:
        raise ValueError(f"{path}: empty trace file")
    return events
