"""Lightweight labeled metrics: counters, gauges, histograms.

A deliberately small registry in the spirit of the client-side halves
of Prometheus/StatsD: the simulation-side instrumentation increments
counters (clock-set calls, redundant-set skips, ring-buffer drops),
sets gauges (last observed power), and feeds histograms (per-function
latency and energy). ``snapshot()`` renders everything into plain
dictionaries keyed by ``name{label=value,...}`` series strings, which
is what ``repro trace summary`` prints and what tests assert against.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Characters that would make a rendered series string ambiguous.
_ESCAPES = (
    ("\\", "\\\\"),  # first, so escapes themselves stay unambiguous
    ("=", r"\="),
    (",", r"\,"),
    ("{", r"\{"),
    ("}", r"\}"),
    ("\n", r"\n"),
)


def escape_label_value(value: str) -> str:
    """Backslash-escape the structural characters of a series string.

    Without this, a label value like ``phase=a,b`` renders into a key
    indistinguishable from two separate labels. Plain alphanumeric
    values render byte-identically to before.
    """
    for char, replacement in _ESCAPES:
        value = value.replace(char, replacement)
    return value


def series_key(name: str, labels: LabelKey) -> str:
    """Render ``name{label=value,...}`` (plain ``name`` when unlabeled).

    Label values are escaped via :func:`escape_label_value` so the
    rendered string parses back unambiguously.
    """
    if not name:
        raise ValueError("metric name must not be empty")
    if not labels:
        return name
    inner = ",".join(f"{k}={escape_label_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default histogram bucket upper bounds (seconds-ish scale).
DEFAULT_BOUNDS: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max tracking."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            f"le={b:g}": n for b, n in zip(self.bounds, self.bucket_counts)
        }
        buckets["le=+inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- get-or-create accessors ---------------------------------------------

    def counter(self, name: str, /, **labels: object) -> Counter:
        if not name:
            raise ValueError("metric name must not be empty")
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        if not name:
            raise ValueError("metric name must not be empty")
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(
        self,
        name: str,
        /,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        if not name:
            raise ValueError("metric name must not be empty")
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(bounds)
        return histogram

    # -- aggregation ----------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of one counter name across all its label sets."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def counter_names(self) -> Iterable[str]:
        return sorted({n for n, _ in self._counters})

    # -- iteration (exposition backends) --------------------------------------

    def iter_counters(self) -> Iterable[Tuple[str, LabelKey, Counter]]:
        """``(name, labels, counter)`` triples, sorted by series key."""
        for (name, labels), counter in sorted(self._counters.items()):
            yield name, labels, counter

    def iter_gauges(self) -> Iterable[Tuple[str, LabelKey, Gauge]]:
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield name, labels, gauge

    def iter_histograms(self) -> Iterable[Tuple[str, LabelKey, Histogram]]:
        for (name, labels), histogram in sorted(self._histograms.items()):
            yield name, labels, histogram

    # -- checkpoint ------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Losslessly serializable registry contents (labels preserved)."""
        return {
            "counters": [
                [name, [list(pair) for pair in labels], c.value]
                for (name, labels), c in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], g.value]
                for (name, labels), g in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    [list(pair) for pair in labels],
                    {
                        "bounds": list(h.bounds),
                        "bucket_counts": list(h.bucket_counts),
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    },
                ]
                for (name, labels), h in sorted(self._histograms.items())
            ],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Replace the registry contents with a :meth:`state_dict`."""
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        for name, labels, value in state["counters"]:
            key = (name, tuple((k, v) for k, v in labels))
            counter = self._counters[key] = Counter()
            counter.value = float(value)
        for name, labels, value in state["gauges"]:
            key = (name, tuple((k, v) for k, v in labels))
            gauge = self._gauges[key] = Gauge()
            gauge.value = float(value)
        for name, labels, payload in state["histograms"]:
            key = (name, tuple((k, v) for k, v in labels))
            histogram = Histogram(bounds=payload["bounds"])
            histogram.bucket_counts = [int(n) for n in payload["bucket_counts"]]
            histogram.count = int(payload["count"])
            histogram.sum = float(payload["sum"])
            histogram.min = float(payload["min"])
            histogram.max = float(payload["max"])
            self._histograms[key] = histogram

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, as plain dicts keyed by rendered series name."""
        return {
            "counters": {
                series_key(n, labels): c.value
                for (n, labels), c in sorted(self._counters.items())
            },
            "gauges": {
                series_key(n, labels): g.value
                for (n, labels), g in sorted(self._gauges.items())
            },
            "histograms": {
                series_key(n, labels): h.snapshot()
                for (n, labels), h in sorted(self._histograms.items())
            },
        }
