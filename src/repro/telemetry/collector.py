"""The bounded ring-buffer trace collector.

:class:`TraceCollector` is the run-time heart of the observability
layer. It is a :class:`~repro.core.hooks.FunctionHook` (structurally —
the hook contract is a Protocol, so no import is needed), registered by
:class:`~repro.sph.simulation.Simulation` *innermost* so its spans
cover exactly the window the energy profiler measures; that makes the
trace-vs-:class:`EnergyReport` reconciliation of
:mod:`repro.telemetry.summary` an exact correctness check.

Beyond the hook interface it exposes explicit emit APIs that the other
instrumentation layers call into:

* :meth:`record_clock_set` / :meth:`record_clock_skip` — from
  :class:`~repro.core.controller.FrequencyController`;
* :meth:`emit_counter_sample` — from
  :class:`~repro.pmt.sampler.PmtSampler` ticks;
* :meth:`emit_phase` — from the Slurm scheduler's job-phase model.

The buffer is bounded: once ``max_events`` is reached the oldest event
is discarded and the ``trace_events_dropped`` counter increments, so a
long run degrades to a trailing window instead of unbounded memory.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from .context import TraceContext
from .events import (
    TRACK_CLOCKS,
    TRACK_COUNTERS,
    TRACK_FAULTS,
    TRACK_FUNCTIONS,
    TRACK_JOB,
    CounterEvent,
    InstantEvent,
    SpanEvent,
    TraceEvent,
    event_sort_key,
)
from .metrics import MetricsRegistry
from .profile import (
    MAIN_SHARD,
    partition_events,
    rank_process_span,
    shard_lines,
    write_shard,
)

#: Default ring capacity: comfortably holds the repo's benchmark runs.
DEFAULT_MAX_EVENTS = 100_000

#: Bucket bounds for per-function latency histograms, seconds.
LATENCY_BOUNDS = (1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Bucket bounds for per-function GPU energy histograms, joules.
ENERGY_BOUNDS = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)


class TraceCollector:
    """Collects typed trace events from every instrumentation layer.

    Parameters
    ----------
    clocks:
        One rank-local :class:`~repro.hardware.clock.VirtualClock` per
        rank; required for implicit timestamps (hook spans, clock
        instants). Emit APIs with an explicit ``ts`` work without it.
    gpus:
        Optional per-rank devices; enables per-span GPU energy
        histograms and clock/temperature counter samples.
    max_events:
        Ring-buffer capacity; the oldest events are dropped beyond it.
    metrics:
        An external :class:`MetricsRegistry` to share; a fresh one is
        created by default.
    """

    def __init__(
        self,
        clocks: Optional[List] = None,
        gpus: Optional[List] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError("ring buffer needs capacity for >= 1 event")
        self._clocks = list(clocks) if clocks is not None else None
        self._gpus = list(gpus) if gpus is not None else None
        self.max_events = max_events
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events: Deque[TraceEvent] = deque()
        self.dropped = 0
        self._open: Dict[int, Tuple[str, float, float]] = {}
        self._step = 0
        self._context: Optional[TraceContext] = None
        self._shard_dir: Optional[str] = None
        self._seq = 0

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_cluster(
        cls,
        cluster,
        max_events: int = DEFAULT_MAX_EVENTS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "TraceCollector":
        """Collector bound to a :class:`~repro.systems.Cluster`'s ranks."""
        return cls(
            clocks=cluster.clocks,
            gpus=cluster.gpus,
            max_events=max_events,
            metrics=metrics,
        )

    def bind_cluster(self, cluster) -> None:
        """Late-bind rank clocks and devices (idempotent)."""
        if self._clocks is None:
            self._clocks = list(cluster.clocks)
        if self._gpus is None:
            self._gpus = list(cluster.gpus)

    @property
    def bound(self) -> bool:
        return self._clocks is not None

    # -- distributed tracing ---------------------------------------------------

    def configure_tracing(
        self,
        context: TraceContext,
        shard_dir: Optional[str] = None,
    ) -> None:
        """Attach a :class:`TraceContext`: subsequent span/instant
        events get ``trace_id``/``span_id`` args, and (with a
        ``shard_dir``) :meth:`flush_shards` persists per-process
        shards at the end of the run."""
        self._context = context
        if shard_dir is not None:
            self._shard_dir = shard_dir

    @property
    def context(self) -> Optional[TraceContext]:
        """The attached trace context, if tracing is configured."""
        return self._context

    @property
    def shard_dir(self) -> Optional[str]:
        return self._shard_dir

    def flush_shards(
        self,
        shard_dir: Optional[str] = None,
        backend: Optional[Any] = None,
    ) -> List[str]:
        """Partition the ring into per-rank shards and persist them.

        Shard *content* is computed here, in the parent, under every
        comm backend — rank partitioning depends only on each event's
        rank, so the bytes are backend-independent. What varies is who
        performs the durable write: given a started parallel
        ``backend`` with a ``write_shard`` pipe command, each rank's
        own worker process writes its shard ("each child records its
        own spans"); otherwise the parent writes all of them. Either
        way every write is atomic. Returns the shard paths.
        """
        if self._context is None:
            raise RuntimeError(
                "configure_tracing() before flush_shards()"
            )
        directory = shard_dir if shard_dir is not None else self._shard_dir
        if directory is None:
            raise RuntimeError(
                "flush_shards() needs a shard directory (configure_tracing"
                "(..., shard_dir=...) or pass one explicitly)"
            )
        os.makedirs(directory, exist_ok=True)
        shards = partition_events(self._events)
        use_workers = (
            backend is not None
            and getattr(backend, "parallel", False)
            and hasattr(backend, "write_shard")
        )
        written: List[str] = []
        for name in sorted(shards):
            events = shards[name]
            if name == MAIN_SHARD:
                shard_ctx = self._context
                rank = None
            else:
                rank = int(name.split("-", 1)[1])
                shard_ctx = self._context.child(name)
                lifetime = rank_process_span(
                    self._context, shard_ctx, rank, events
                )
                if lifetime is not None:
                    events = sorted(
                        events + [lifetime], key=event_sort_key
                    )
            path = os.path.join(directory, f"{name}.jsonl")
            lines = shard_lines(shard_ctx, name, events)
            if use_workers and rank is not None:
                backend.write_shard(rank, path, lines)
            else:
                write_shard(path, lines)
            written.append(path)
        return written

    # -- checkpoint ------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Counters, step index and drop count (not the event ring).

        The bounded event ring is a trailing debug window, not part of
        any result; a resumed run restarts it empty while the metric
        counters continue exactly where they left off.
        """
        return {
            "step": self._step,
            "dropped": self.dropped,
            "metrics": self.metrics.state_dict(),
            "context": (
                self._context.to_dict() if self._context is not None else None
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._step = int(state["step"])
        self.dropped = int(state["dropped"])
        self.metrics.restore_state(state["metrics"])
        self._events.clear()
        self._open = {}
        self._seq = 0
        saved = state.get("context")
        if saved is not None:
            # Same trace, new span lineage: the restored process is a
            # distinct span parented on the checkpointed one, so a
            # resumed unit stays correlated to the original request
            # while its post-restore events are distinguishable.
            self._context = TraceContext.from_dict(saved).restarted(
                self._step
            )

    def now(self, rank: int) -> float:
        """Rank-local simulated time."""
        if self._clocks is None:
            raise RuntimeError(
                "collector has no clocks: construct with for_cluster() or "
                "bind_cluster() before implicit-timestamp emits"
            )
        return self._clocks[rank].now

    # -- event access ----------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """Chronologically appended events currently in the ring."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def spans(self, track: Optional[str] = None) -> List[SpanEvent]:
        return [
            e
            for e in self._events
            if isinstance(e, SpanEvent) and (track is None or e.track == track)
        ]

    def instants(self, track: Optional[str] = None) -> List[InstantEvent]:
        return [
            e
            for e in self._events
            if isinstance(e, InstantEvent)
            and (track is None or e.track == track)
        ]

    def counters(self, track: Optional[str] = None) -> List[CounterEvent]:
        return [
            e
            for e in self._events
            if isinstance(e, CounterEvent)
            and (track is None or e.track == track)
        ]

    def _append(self, event: TraceEvent) -> None:
        context = self._context
        if context is not None and isinstance(
            event, (SpanEvent, InstantEvent)
        ):
            args = dict(event.args)
            args.setdefault("trace_id", context.trace_id)
            args.setdefault(
                "span_id", context.event_span_id(self._seq)
            )
            self._seq += 1
            event = replace(event, args=args)
        if len(self._events) >= self.max_events:
            self._events.popleft()
            self.dropped += 1
            self.metrics.counter("trace_events_dropped").inc()
        self._events.append(event)

    # -- FunctionHook interface ------------------------------------------------

    def before_function(self, function: str, rank: int) -> None:
        gpu_j = self._gpus[rank].energy_j if self._gpus else 0.0
        self._open[rank] = (function, self.now(rank), gpu_j)

    def after_function(self, function: str, rank: int) -> None:
        open_fn, t0, gpu_j0 = self._open.pop(rank, (None, 0.0, 0.0))
        if open_fn != function:
            raise RuntimeError(
                f"rank {rank} closing span {function!r} but "
                f"{open_fn!r} is open"
            )
        t1 = self.now(rank)
        self._append(
            SpanEvent(
                name=function,
                rank=rank,
                t0_s=t0,
                t1_s=t1,
                track=TRACK_FUNCTIONS,
                args={"step": self._step},
            )
        )
        self.metrics.counter("spans_recorded").inc()
        self.metrics.histogram(
            "function_time_s", bounds=LATENCY_BOUNDS, function=function
        ).observe(t1 - t0)
        if self._gpus is not None:
            gpu = self._gpus[rank]
            self.metrics.histogram(
                "function_gpu_j", bounds=ENERGY_BOUNDS, function=function
            ).observe(gpu.energy_j - gpu_j0)
            self._append(
                CounterEvent(
                    name="gpu",
                    rank=rank,
                    ts_s=t1,
                    values={
                        "clock_mhz": gpu.current_clock_hz / 1e6,
                        "temp_c": gpu.temperature_c,
                    },
                    track=TRACK_COUNTERS,
                )
            )

    def mark_step(self) -> None:
        """Advance the step index attached to subsequent spans."""
        self._step += 1

    # -- explicit emit APIs ----------------------------------------------------

    def emit_instant(
        self,
        name: str,
        rank: int,
        ts: Optional[float] = None,
        track: str = TRACK_CLOCKS,
        **args: Any,
    ) -> None:
        """Record a point-in-time occurrence on a rank's track."""
        self._append(
            InstantEvent(
                name=name,
                rank=rank,
                ts_s=self.now(rank) if ts is None else ts,
                track=track,
                args=args,
            )
        )

    def record_clock_set(
        self,
        rank: int,
        to_mhz: Optional[float],
        from_mhz: Optional[float] = None,
        reset: bool = False,
    ) -> None:
        """One performed management-library clock change on ``rank``.

        Called by the frequency controller *after* the NVML/ROCm/Sysman
        call, so the instant's timestamp includes the relock latency.
        """
        name = "clock-reset" if reset else "clock-set"
        args: Dict[str, Any] = {}
        if to_mhz is not None:
            args["to_mhz"] = to_mhz
        if from_mhz is not None:
            args["from_mhz"] = from_mhz
        self.emit_instant(name, rank, track=TRACK_CLOCKS, **args)
        self.metrics.counter("clock_set_calls", rank=rank).inc()
        if to_mhz is not None:
            self._append(
                CounterEvent(
                    name="application_clock",
                    rank=rank,
                    ts_s=self.now(rank),
                    values={"mhz": to_mhz},
                    track=TRACK_CLOCKS,
                )
            )

    def record_clock_skip(self, rank: int, to_mhz: Optional[float]) -> None:
        """A redundant clock request elided by the controller.

        No instant is emitted — nothing happened on the device — so
        clock-change instants stay in lockstep with ``clock_set_calls``.
        """
        self.metrics.counter("clock_set_skipped", rank=rank).inc()

    def record_dvfs_handover(self, rank: int) -> None:
        """The device was handed to its DVFS governor."""
        self.emit_instant("dvfs-governor", rank, track=TRACK_CLOCKS)

    # -- fault / resilience track ----------------------------------------------

    def record_fault_injected(
        self, rank: int, op: str, kind: str, ts: Optional[float] = None
    ) -> None:
        """One fault delivered by the fault injector."""
        self.emit_instant(
            "fault-injected", rank, ts=ts, track=TRACK_FAULTS, op=op, kind=kind
        )
        self.metrics.counter("faults_injected", kind=kind).inc()

    def record_retry(
        self, rank: int, op: str, attempt: int, error: str
    ) -> None:
        """One transient-error retry performed by a resilient caller."""
        self.emit_instant(
            "fault-retry",
            rank,
            track=TRACK_FAULTS,
            op=op,
            attempt=attempt,
            error=error,
        )
        self.metrics.counter("fault_retries", rank=rank).inc()

    def record_degradation(self, rank: int, reason: str) -> None:
        """A rank's circuit breaker tripped: device handed to DVFS."""
        self.emit_instant(
            "rank-degraded", rank, track=TRACK_FAULTS, reason=reason
        )
        self.metrics.counter("ranks_degraded").inc()

    def record_power_gap(
        self, rank: int, t0: float, t1: float, reason: str
    ) -> None:
        """A power-sampling gap that was bridged by interpolation."""
        self.emit_phase(
            "power-gap", rank, t0, t1, track=TRACK_FAULTS, reason=reason
        )
        self.metrics.counter("power_read_gaps", rank=rank).inc()

    def emit_counter_sample(
        self,
        name: str,
        rank: int,
        values: Mapping[str, float],
        ts: Optional[float] = None,
        track: str = TRACK_COUNTERS,
    ) -> None:
        """One periodic reading (power, frequency, temperature...)."""
        self._append(
            CounterEvent(
                name=name,
                rank=rank,
                ts_s=self.now(rank) if ts is None else ts,
                values={k: float(v) for k, v in values.items()},
                track=track,
            )
        )
        self.metrics.counter("counter_samples", name=name).inc()
        for key, value in values.items():
            self.metrics.gauge(f"last_{name}_{key}", rank=rank).set(value)

    def emit_phase(
        self,
        name: str,
        rank: int,
        t0: float,
        t1: float,
        track: str = TRACK_JOB,
        **args: Any,
    ) -> None:
        """A named phase span with explicit endpoints (job lifecycle)."""
        self._append(
            SpanEvent(
                name=name, rank=rank, t0_s=t0, t1_s=t1, track=track, args=args
            )
        )
