"""Typed trace events: the unified event model of the observability layer.

The paper's measurement infrastructure produces three distinct signal
shapes, which Score-P-style tracing systems model as three event kinds:

* **duration spans** — one per instrumented step function per rank per
  step (the §III-B hook windows);
* **instant events** — point-in-time occurrences: NVML/ROCm application
  clock changes (§III-D), DVFS governor handovers, Slurm job state
  transitions;
* **counter samples** — periodic readings of continuous quantities:
  power, frequency, temperature (the PMT dump-mode series of §III-A).

Every event carries a *track identity*: the rank it belongs to (one
process per rank in the Chrome-trace layout) and a named track within
that rank (kernels vs. clocks vs. power counters vs. job phases).
Timestamps are monotonic *simulated* seconds from the rank-local
:class:`~repro.hardware.clock.VirtualClock`, so traces are bit-for-bit
deterministic.

The module also owns the on-disk schema version shared by every
line-oriented export in the repository (trace JSONL, PMT dump files):
a ``{"schema": 1, ...}`` header guards against silent format drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Union

#: Version of the line-oriented export schema (trace JSONL, PMT dumps).
SCHEMA_VERSION = 1

#: Track for step-function duration spans (the kernel work of a rank).
TRACK_FUNCTIONS = "kernels"

#: Track for application-clock changes and DVFS transitions.
TRACK_CLOCKS = "clocks"

#: Track for periodic counter samples (power, frequency, temperature).
TRACK_COUNTERS = "power"

#: Track for Slurm job-phase spans (scheduling, accounting window).
TRACK_JOB = "job"

#: Track for injected faults and resilience actions (retries, breaker
#: trips, DVFS degradations, power-sampling gaps).
TRACK_FAULTS = "faults"

#: All known tracks in the Chrome-trace thread layout order.
TRACKS = (TRACK_FUNCTIONS, TRACK_CLOCKS, TRACK_COUNTERS, TRACK_JOB, TRACK_FAULTS)


@dataclass(frozen=True)
class SpanEvent:
    """A duration span: one hook window or job phase on one rank."""

    name: str
    rank: int
    t0_s: float
    t1_s: float
    track: str = TRACK_FUNCTIONS
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t1_s < self.t0_s:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.t1_s} < {self.t0_s})"
            )

    @property
    def ts_s(self) -> float:
        """Sort timestamp (span start)."""
        return self.t0_s

    @property
    def duration_s(self) -> float:
        return self.t1_s - self.t0_s


@dataclass(frozen=True)
class InstantEvent:
    """A point-in-time occurrence (clock change, state transition)."""

    name: str
    rank: int
    ts_s: float
    track: str = TRACK_CLOCKS
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterEvent:
    """One sample of one or more continuous quantities."""

    name: str
    rank: int
    ts_s: float
    values: Mapping[str, float] = field(default_factory=dict)
    track: str = TRACK_COUNTERS


TraceEvent = Union[SpanEvent, InstantEvent, CounterEvent]


def event_sort_key(event: TraceEvent):
    """Stable chronological ordering: time, then rank, then track."""
    return (event.ts_s, event.rank, event.track)


# ---------------------------------------------------------------------------
# JSONL record conversion (compact export for programmatic diffing)
# ---------------------------------------------------------------------------

def to_record(event: TraceEvent) -> Dict[str, Any]:
    """One event as a plain JSON-serializable record.

    The ``ph`` phase letters intentionally match the Chrome trace_event
    convention (``X`` complete span, ``i`` instant, ``C`` counter) so a
    JSONL line maps 1:1 onto its Chrome-export counterpart.
    """
    if isinstance(event, SpanEvent):
        rec: Dict[str, Any] = {
            "ph": "X",
            "name": event.name,
            "rank": event.rank,
            "track": event.track,
            "ts": event.t0_s,
            "dur": event.duration_s,
            # The exact endpoint too: ``ts + dur`` can differ from the
            # recorded ``t1`` by an ulp, and the JSONL export must be
            # lossless for diffing.
            "t1": event.t1_s,
        }
        if event.args:
            rec["args"] = dict(event.args)
        return rec
    if isinstance(event, InstantEvent):
        rec = {
            "ph": "i",
            "name": event.name,
            "rank": event.rank,
            "track": event.track,
            "ts": event.ts_s,
        }
        if event.args:
            rec["args"] = dict(event.args)
        return rec
    if isinstance(event, CounterEvent):
        return {
            "ph": "C",
            "name": event.name,
            "rank": event.rank,
            "track": event.track,
            "ts": event.ts_s,
            "values": dict(event.values),
        }
    raise TypeError(f"not a trace event: {event!r}")


def from_record(record: Mapping[str, Any]) -> TraceEvent:
    """Inverse of :func:`to_record`."""
    ph = record.get("ph")
    if ph == "X":
        t0 = float(record["ts"])
        t1 = record.get("t1")
        return SpanEvent(
            name=record["name"],
            rank=int(record["rank"]),
            t0_s=t0,
            t1_s=float(t1) if t1 is not None else t0 + float(record["dur"]),
            track=record.get("track", TRACK_FUNCTIONS),
            args=dict(record.get("args", {})),
        )
    if ph == "i":
        return InstantEvent(
            name=record["name"],
            rank=int(record["rank"]),
            ts_s=float(record["ts"]),
            track=record.get("track", TRACK_CLOCKS),
            args=dict(record.get("args", {})),
        )
    if ph == "C":
        return CounterEvent(
            name=record["name"],
            rank=int(record["rank"]),
            ts_s=float(record["ts"]),
            values={k: float(v) for k, v in record.get("values", {}).items()},
            track=record.get("track", TRACK_COUNTERS),
        )
    raise ValueError(f"unknown event phase {ph!r} in record {record!r}")


# ---------------------------------------------------------------------------
# Shared schema header (trace JSONL and PMT dump files)
# ---------------------------------------------------------------------------

def schema_header(kind: str, **extra: Any) -> Dict[str, Any]:
    """The versioned first-record of every line-oriented export."""
    header: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": kind}
    header.update(extra)
    return header


def check_schema_header(header: Mapping[str, Any], kind: str) -> None:
    """Validate a parsed header; raise ``ValueError`` on any mismatch."""
    version = header.get("schema")
    if not isinstance(version, int):
        raise ValueError(f"missing schema version in header {header!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"file has schema {version}, this build reads <= {SCHEMA_VERSION}"
        )
    got = header.get("kind")
    if got != kind:
        raise ValueError(f"expected a {kind!r} file, found {got!r}")
