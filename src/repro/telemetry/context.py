"""W3C-traceparent-style trace context for cross-process correlation.

A :class:`TraceContext` is the identity that ties every span of one
logical request together: a service submission, a ``repro campaign
run`` invocation, or a bare traced :class:`~repro.sph.Simulation.run`
mints one **root** context at the outermost entry point, and every
process boundary the request crosses — campaign ProcessPool lanes,
:mod:`repro.mpi.proc` rank workers, service WAL records — carries a
**child** context derived from it.

Two properties matter more here than in a wall-clock tracing system:

* **Determinism.** The whole telemetry layer is bit-stable: virtual
  timestamps make a re-run's trace compare equal float-for-float.
  Context derivation keeps that property — child span ids are content
  hashes of ``(trace_id, parent span, edge name)``, never random — so
  the merged trace of a campaign unit is identical whether its ranks
  ran inline (``local`` backend) or as forked OS processes
  (``process`` backend), and a resubmitted spec reattaches to the same
  trace identity its first submission minted.
* **Crash continuity.** A context survives checkpoint/restore with the
  *same* ``trace_id`` but a *new* span lineage (the restored process
  is a different span parented on the interrupted one), so a resumed
  unit's spans stay correlated to the original request while remaining
  distinguishable from the pre-crash attempt.

The wire format follows the W3C Trace Context shape: a 32-hex-digit
``trace_id``, 16-hex-digit ``span_id``, and the ``traceparent`` header
rendering ``00-<trace_id>-<span_id>-01`` for anything that wants to
interoperate (the service returns it to HTTP clients).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

#: Version byte of the ``traceparent`` rendering (W3C Trace Context).
TRACEPARENT_VERSION = "00"

#: Flags byte: always "sampled" — repro traces are opt-in already.
TRACEPARENT_FLAGS = "01"

_TRACE_ID_CHARS = 32
_SPAN_ID_CHARS = 16
_HEX = set("0123456789abcdef")


def _derive(seed: str, n_chars: int) -> str:
    """Deterministic hex id: truncated SHA-256 of the seed string."""
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:n_chars]


def _check_hex(value: str, n_chars: int, what: str) -> None:
    if len(value) != n_chars or not set(value) <= _HEX:
        raise ValueError(
            f"{what} must be {n_chars} lowercase hex chars, got {value!r}"
        )


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace: trace identity + span lineage."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def __post_init__(self) -> None:
        _check_hex(self.trace_id, _TRACE_ID_CHARS, "trace_id")
        _check_hex(self.span_id, _SPAN_ID_CHARS, "span_id")
        if self.parent_span_id is not None:
            _check_hex(self.parent_span_id, _SPAN_ID_CHARS, "parent_span_id")

    # -- derivation ----------------------------------------------------------

    def child(self, edge: str) -> "TraceContext":
        """Context for a child process/scope reached via ``edge``.

        Derivation is a content hash, so both sides of a process
        boundary compute the *same* child id from the same edge name —
        the parent can predict (and later merge against) the contexts
        its children will record under without any return channel.
        """
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_derive(
                f"{self.trace_id}:{self.span_id}:{edge}", _SPAN_ID_CHARS
            ),
            parent_span_id=self.span_id,
        )

    def restarted(self, generation: Any) -> "TraceContext":
        """Post-restore lineage: same trace, new span parented on us.

        ``generation`` disambiguates successive restarts (a step count
        or attempt number); the trace id is untouched so a resumed unit
        stays correlated to the originating request.
        """
        return self.child(f"restart:{generation}")

    def event_span_id(self, seq: int) -> str:
        """Span id of the ``seq``-th event recorded under this context."""
        return _derive(
            f"{self.trace_id}:{self.span_id}:event:{seq}", _SPAN_ID_CHARS
        )

    # -- wire formats --------------------------------------------------------

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value."""
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-"
            f"{self.span_id}-{TRACEPARENT_FLAGS}"
        )

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header (inverse of
        :meth:`to_traceparent`; the parent link does not travel)."""
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise ValueError(f"malformed traceparent {header!r}")
        version, trace_id, span_id, _flags = parts
        if version != TRACEPARENT_VERSION:
            raise ValueError(
                f"unsupported traceparent version {version!r} "
                f"(this build reads {TRACEPARENT_VERSION})"
            )
        return cls(trace_id=trace_id, span_id=span_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (pipe messages, WAL records,
        checkpoint state)."""
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_span_id=(
                str(payload["parent_span_id"])
                if payload.get("parent_span_id") is not None
                else None
            ),
        )


def mint_context(seed: Optional[str] = None) -> TraceContext:
    """Mint a **root** context at an outermost entry point.

    With a ``seed`` the context is fully deterministic — the service
    seeds with its content-addressed job id, so resubmitting the same
    spec reattaches to the same trace, and smoke tests get reproducible
    ids. Without one, fresh randomness is used (an interactive
    ``repro profile record`` wants a new trace per invocation).
    """
    if seed is None:
        seed = os.urandom(16).hex()
    return TraceContext(
        trace_id=_derive(f"trace:{seed}", _TRACE_ID_CHARS),
        span_id=_derive(f"span:{seed}", _SPAN_ID_CHARS),
    )
