"""repro — reproduction of "Increasing Energy Efficiency of Astrophysics
Simulations Through GPU Frequency Scaling" (Simsek, Piccinali, Ciorba,
SC 2024).

The package implements, in pure Python over a simulated CPU+GPU
substrate (see DESIGN.md):

* ``repro.hardware``  — simulated GPUs/CPUs/nodes with calibrated
  frequency-response performance and power models, and a DVFS governor;
* ``repro.nvml`` / ``repro.rocm`` — vendor management-library APIs;
* ``repro.pmt``       — the Power Measurement Toolkit interface;
* ``repro.craypm``    — HPE/Cray pm_counters emulation;
* ``repro.slurm``     — job management with energy accounting;
* ``repro.mpi``       — a deterministic rank simulator;
* ``repro.sph``       — an SPH-EXA-like simulation framework
  (octree domain decomposition, real SPH numerics, workload models);
* ``repro.core``      — the paper's contribution: instrumentation for
  per-function energy measurement and dynamic GPU frequency scaling;
* ``repro.telemetry`` — structured tracing + metrics: typed trace
  events, a ring-buffer collector hooked into the step loop, Chrome
  ``trace_event``/JSONL export and trace-vs-report reconciliation;
* ``repro.tuner``     — KernelTuner-style frequency tuning;
* ``repro.systems``   — the Table-I machine presets.

Quickstart::

    from repro.systems import mini_hpc, Cluster
    from repro.sph import run_instrumented
    from repro.core import ManDynPolicy

    cluster = Cluster(mini_hpc(), n_ranks=1)
    policy = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
    result = run_instrumented(
        cluster, "SubsonicTurbulence", 450**3, n_steps=10, policy=policy
    )
    print(result.elapsed_s, result.gpu_energy_j)
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "craypm",
    "hardware",
    "langbench",
    "mpi",
    "nvml",
    "pmt",
    "reporting",
    "rocm",
    "slurm",
    "sph",
    "systems",
    "telemetry",
    "tuner",
    "units",
]
