"""Atomic, schema-versioned simulation checkpoints.

A checkpoint is one JSON document capturing the *complete* state of a
:class:`~repro.sph.simulation.Simulation` at a step boundary: particle
arrays, Verlet-skin neighbor state, policy/tuner observations, energy
accumulators, controller counters, telemetry counters and fault-injector
RNG state. Restoring it and running the remaining steps is proven (by
test) to be bit-identical to an uninterrupted run — JSON round-trips
Python floats exactly, and numpy arrays travel as base64 of their raw
bytes with dtype/shape preserved.

Files are written with the same durability idiom as the campaign
RunStore artifacts: serialize to ``<path>.tmp``, ``fsync``, then
``os.replace`` — a reader (or a resume after SIGKILL) never observes a
torn checkpoint, only the previous complete one or none at all.

The document layout is versioned (:data:`CHECKPOINT_SCHEMA`); loaders
reject unknown schemas/kinds with :class:`CheckpointError` so callers
can treat an incompatible file as a checkpoint *miss* rather than a
crash.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "checkpoint_exists",
    "decode_array",
    "decode_state",
    "encode_array",
    "encode_state",
    "read_checkpoint",
    "write_checkpoint",
]

#: Version of the checkpoint document layout.
CHECKPOINT_SCHEMA = 1

#: The ``kind`` tag every checkpoint document carries.
CHECKPOINT_KIND = "sim-checkpoint"

#: Marker key identifying an encoded ndarray inside the JSON tree.
_ND_KEY = "__ndarray__"


class CheckpointError(ValueError):
    """A checkpoint file is missing, incompatible or inconsistent."""


# -- array codec -------------------------------------------------------------


def _narrowed(array: np.ndarray) -> np.ndarray:
    """Smallest lossless integer storage dtype for ``array``.

    Index arrays (the Verlet-skin neighbor CSR is by far the largest
    checkpoint payload) are int64 in memory but their values fit in
    int32/int16 for any problem this codebase simulates; storing them
    narrow halves the snapshot size, which is most of the per-write
    cost. Exact by construction — integers narrow losslessly and the
    decoder casts back to the recorded in-memory dtype. Floats are
    never narrowed (that would break bit-exactness).
    """
    if array.dtype.kind not in ("i", "u") or array.size == 0:
        return array
    lo, hi = int(array.min()), int(array.max())
    kind = array.dtype.kind
    for width in (1, 2, 4, 8):
        if width >= array.dtype.itemsize:
            return array
        narrow = np.dtype(f"{kind}{width}")
        info = np.iinfo(narrow)
        if info.min <= lo and hi <= info.max:
            return array.astype(narrow)
    return array


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Encode one ndarray as ``{dtype, shape, data}`` (base64 raw bytes).

    Raw-byte transport (not repr/str) is what makes restore bit-exact:
    the float64 payload is byte-identical after a round trip. Integer
    arrays are stored in the smallest lossless width (``store_dtype``)
    and widened back to ``dtype`` on decode.
    """
    contiguous = np.ascontiguousarray(array)
    payload: Dict[str, Any] = {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
    }
    if contiguous.dtype == np.bool_:
        # One bit per flag instead of one byte: the Verlet-skin
        # mirror-absent mask is a large per-pair bool array.
        payload["store_dtype"] = "packbits"
        stored = np.packbits(contiguous.reshape(-1))
    else:
        stored = _narrowed(contiguous)
        if (
            contiguous.dtype.kind == "i"
            and contiguous.ndim == 1
            and contiguous.size > 1024
        ):
            # Large index arrays (the neighbor CSR) are runs of nearby
            # values; first-differences narrow further than the values
            # themselves. Exact: integer cumsum inverts integer diff.
            deltas = _narrowed(np.diff(contiguous))
            if deltas.itemsize < stored.itemsize:
                payload["store_delta"] = int(contiguous[0])
                stored = deltas
        if stored.dtype != contiguous.dtype:
            payload["store_dtype"] = str(stored.dtype)
    payload["data"] = base64.b64encode(
        np.ascontiguousarray(stored).tobytes()
    ).decode("ascii")
    return {_ND_KEY: payload}


def decode_array(payload: Mapping[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    spec = payload[_ND_KEY]
    raw = base64.b64decode(spec["data"])
    shape = tuple(spec["shape"])
    stored = spec.get("store_dtype")
    if stored == "packbits":
        n = int(np.prod(shape, dtype=np.int64))
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=n)
        return bits.astype(np.bool_).reshape(shape).copy()
    array = np.frombuffer(raw, dtype=np.dtype(stored or spec["dtype"]))
    if "store_delta" in spec:
        first = np.array([spec["store_delta"]], dtype=np.int64)
        array = np.concatenate([first, array.astype(np.int64)]).cumsum()
    if stored:
        array = array.astype(np.dtype(spec["dtype"]))
    return array.reshape(shape).copy()


def encode_state(value: Any) -> Any:
    """Recursively encode a state tree for JSON.

    ndarrays become :func:`encode_array` payloads; tuples become lists
    (component ``restore_state`` hooks re-tuple where identity matters);
    dicts/lists/scalars pass through. Unknown types raise so a new
    unserializable field fails loudly at save time, not at restore.
    """
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): encode_state(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_state(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(
        f"cannot checkpoint value of type {type(value).__name__}"
    )


def decode_state(value: Any) -> Any:
    """Recursively decode a JSON tree, materializing encoded ndarrays."""
    if isinstance(value, dict):
        if _ND_KEY in value and len(value) == 1:
            return decode_array(value)
        return {k: decode_state(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_state(v) for v in value]
    return value


# -- file I/O ----------------------------------------------------------------


def write_checkpoint(
    path: Union[str, Path], state: Mapping[str, Any]
) -> Path:
    """Atomically persist one checkpoint document.

    ``state`` is the component-state tree (may contain raw ndarrays);
    the schema header and kind tag are added here. Written with the
    temp-file + fsync + rename idiom so a crash mid-write leaves the
    previous checkpoint (or nothing) — never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": CHECKPOINT_KIND,
    }
    document.update(encode_state(dict(state)))
    tmp = path.with_name(path.name + ".tmp")
    # NaN/inf must survive (DvfsGovernor._since_launch starts at inf),
    # so this deliberately keeps json's default allow_nan=True.
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one checkpoint document.

    Raises :class:`CheckpointError` when the file is absent, not valid
    JSON, or carries an unknown schema/kind — callers treat any of
    those as a checkpoint miss and start from scratch.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint ({exc})") from None
    if not isinstance(document, dict):
        raise CheckpointError(f"{path}: checkpoint is not an object")
    if document.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"{document.get('schema')!r} (expected {CHECKPOINT_SCHEMA})"
        )
    if document.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path}: not a simulation checkpoint "
            f"(kind={document.get('kind')!r})"
        )
    return decode_state(document)


def checkpoint_exists(path: Optional[Union[str, Path]]) -> bool:
    """True when ``path`` names an existing (possibly stale) checkpoint."""
    return bool(path) and Path(path).exists()
