"""ASCII charts for figure-style output in a terminal.

The benchmark harness renders the paper's bar charts (Figs. 4, 7) and
time series (Fig. 9) as text so the reproduction record is
self-contained without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bar chart of ``{label: value}``.

    ``baseline`` draws a reference mark (e.g. 1.0 for normalized plots).
    """
    if not values:
        raise ValueError("nothing to chart")
    vmax = max(max(values.values()), baseline or 0.0)
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    mark_col = (
        min(int(round(baseline / vmax * width)), width - 1)
        if baseline is not None
        else -1
    )
    for label, value in values.items():
        filled = int(round(value / vmax * width))
        bar = ["█"] * filled + [" "] * (width - filled)
        if 0 <= mark_col < width and baseline is not None:
            bar[mark_col] = "|" if bar[mark_col] == " " else "┃"
        lines.append(
            f"{label.ljust(label_w)} {''.join(bar)} {value:.4g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 14,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Scatter/line chart of (x, y) points on a character grid."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int(round((x - x0) / (x1 - x0) * (width - 1)))
        row = int(round((y - y0) / (y1 - y0) * (height - 1)))
        grid[height - 1 - row][col] = "•"
    lines = [title] if title else []
    top_label = f"{y1:.4g}"
    bottom_label = f"{y0:.4g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for r, row_chars in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bottom_label.rjust(pad)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_chars)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    x_line = (
        " " * pad
        + "  "
        + f"{x0:.4g}".ljust(width - len(f"{x1:.4g}"))
        + f"{x1:.4g}"
    )
    lines.append(x_line)
    if x_label:
        lines.append(" " * pad + "  " + x_label.center(width))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Single-line sparkline of a series."""
    if not values:
        raise ValueError("nothing to chart")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )
