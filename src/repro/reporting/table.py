"""Plain-text tables and series for the benchmark harness.

Every bench prints the rows/series of its paper table or figure with
these helpers, so `pytest benchmarks/ --benchmark-only` output is the
reproduction record.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Dict[str, Dict], x_label: str = "x", title: str = ""
) -> str:
    """Render ``{series_name: {x: y}}`` as a merged table.

    The x values are the union of all series' keys, sorted.
    """
    xs: List = sorted({x for ys in series.values() for x in ys})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            row.append(series[name].get(x, ""))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_breakdown(
    breakdown: Dict[str, float], title: str = "", unit: str = "%"
) -> str:
    """Render a {label: value} breakdown sorted by descending value."""
    rows = sorted(breakdown.items(), key=lambda kv: -kv[1])
    return render_table(
        ["component", unit], [(k, v) for k, v in rows], title=title
    )


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
