"""Benchmark harness reporting utilities."""

from .ascii_chart import bar_chart, line_chart, sparkline
from .export import (
    read_csv,
    read_json,
    read_jsonl,
    write_csv,
    write_json,
    write_jsonl,
)
from .table import render_breakdown, render_series, render_table

__all__ = [
    "bar_chart",
    "line_chart",
    "sparkline",
    "read_csv",
    "read_json",
    "read_jsonl",
    "write_csv",
    "write_json",
    "write_jsonl",
    "render_breakdown",
    "render_series",
    "render_table",
]
