"""CSV/JSON/JSONL export of benchmark rows (post-hoc analysis artifacts)."""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Optional, Sequence


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Write a rows table as CSV."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


def read_csv(path: str) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`write_csv` as dict rows."""
    with open(path, newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))


def write_json(path: str, payload) -> None:
    """Write a JSON artifact with stable formatting."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def read_json(path: str):
    """Read a JSON artifact."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_jsonl(
    path: str, records: Iterable[Dict], header: Optional[Dict] = None
) -> None:
    """Write line-delimited JSON: optional header record, then records.

    The telemetry layer writes traces this way (one compact record per
    event, ``{"schema": ...}`` header first) so exports stream and diff
    line-by-line.
    """
    with open(path, "w", encoding="utf-8") as fh:
        if header is not None:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> List[Dict]:
    """Read a JSONL file written by :func:`write_jsonl` (all records)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
