"""CSV/JSON export of benchmark rows (post-hoc analysis artifacts)."""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Sequence


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Write a rows table as CSV."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


def read_csv(path: str) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`write_csv` as dict rows."""
    with open(path, newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))


def write_json(path: str, payload) -> None:
    """Write a JSON artifact with stable formatting."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def read_json(path: str):
    """Read a JSON artifact."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
