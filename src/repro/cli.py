"""Command-line interface.

Gives downstream users the paper's workflow without writing Python::

    python -m repro run --system miniHPC --workload turbulence \
        --particles 91125000 --steps 10 --policy mandyn
    python -m repro tune --system miniHPC --particles 91125000
    python -m repro compare --system miniHPC --particles 91125000
    python -m repro systems
    python -m repro sacct --system CSCS-A100 --ranks 8 --steps 5
    python -m repro trace record --workload sedov --steps 4 \
        --export trace.json
    python -m repro trace summary --policy mandyn
    python -m repro campaign run --spec examples/campaign_fig7.json \
        --dir campaigns/fig7 --workers 2
    python -m repro campaign report --dir campaigns/fig7
    python -m repro monitor snapshot --workload sedov --steps 4
    python -m repro monitor report --workload sedov --steps 4 \
        --scenario flaky-clocks --out report.html
    python -m repro monitor watch --dir campaigns/fig7
    python -m repro profile record --spec examples/campaign_fig7.json \
        --dir campaigns/fig7 --workers 2
    python -m repro profile critical-path --trace campaigns/fig7/traces/<key>
    python -m repro profile diff trace_a.jsonl trace_b.jsonl

Every subcommand prints the same report tables the benchmarks use;
``trace`` records a structured run trace (Chrome ``trace_event`` JSON
for Perfetto, compact JSONL for diffing) through ``repro.telemetry``.
"""

from __future__ import annotations

import argparse
import importlib.metadata
import json
import sys
from typing import Dict, List, Optional, Sequence

from . import nvml
from .core import (
    DvfsPolicy,
    FrequencyPolicy,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
    device_breakdown_percent,
    function_share_percent,
)
from .reporting import render_breakdown, render_table
from .slurm import JobSpec, SlurmController
from .sph import run_instrumented, resolve_workload
from .systems import Cluster, all_system_names, by_name
from .tuner import tune_all_sph_functions
from .units import format_energy, format_time, to_mhz


def _workload(name: str) -> str:
    try:
        return resolve_workload(name)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _policy(
    name: str, freq: Optional[float], freq_map: Optional[str], max_mhz: float
) -> FrequencyPolicy:
    key = name.lower()
    if key == "baseline":
        return baseline_policy(max_mhz)
    if key == "static":
        if freq is None:
            raise SystemExit("--freq is required with --policy static")
        return StaticFrequencyPolicy(freq)
    if key == "dvfs":
        return DvfsPolicy()
    if key == "mandyn":
        mapping: Dict[str, float] = {}
        if freq_map:
            mapping = {
                k: float(v)
                for k, v in (json.loads(freq_map)).items()
            }
        else:
            # The Fig. 2 outcome as a sensible default.
            mapping = {
                "MomentumEnergy": max_mhz,
                "IADVelocityDivCurl": max_mhz,
            }
        default = freq if freq is not None else 1005.0
        return ManDynPolicy(mapping, default_mhz=default)
    raise SystemExit(
        f"unknown policy {name!r} (known: baseline, static, dvfs, mandyn)"
    )


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        from . import __version__

        return __version__


def _run_once(args, policy: FrequencyPolicy, telemetry=None):
    cluster = Cluster(
        by_name(args.system),
        args.ranks,
        comm_backend=getattr(args, "comm_backend", "local"),
    )
    try:
        result = run_instrumented(
            cluster,
            _workload(args.workload),
            args.particles,
            args.steps,
            policy=policy,
            telemetry=telemetry,
        )
    finally:
        cluster.detach_management_library()
    return result, cluster


def cmd_systems(args) -> int:
    from .catalog import available_entries, validate_shipped_catalog

    if getattr(args, "validate", False):
        entries = validate_shipped_catalog()
        for entry in entries:
            print(f"OK {entry.name}: {entry.path}")
        print(f"{len(entries)} shipped spec(s) valid")
        return 0
    entries = available_entries()
    if getattr(args, "json", False):
        systems = []
        for name in all_system_names():
            if name in entries:
                systems.append(entries[name].to_dict())
            else:  # preset without a catalog file (defensive)
                system = by_name(name)
                gpu = system.gpu_spec()
                systems.append({
                    "name": name,
                    "source": None,
                    "schema": None,
                    "vendor": gpu.vendor,
                    "gpu": gpu.name,
                    "clock_mhz": [to_mhz(gpu.min_clock_hz),
                                  to_mhz(gpu.max_clock_hz)],
                    "ranks_per_node": system.ranks_per_node,
                    "pmt_backend": system.pmt_backend,
                    "slurm_energy_plugin": system.slurm_energy_plugin,
                    "description": "",
                    "origin": "builtin",
                })
        print(json.dumps(
            {"schema": 1, "kind": "system-catalog", "systems": systems},
            indent=1, sort_keys=True,
        ))
        return 0
    rows = []
    for name in all_system_names():
        system = by_name(name)
        gpu = system.gpu_spec()
        entry = entries.get(name)
        rows.append(
            [
                name,
                f"{system.ranks_per_node}x {gpu.name}",
                f"{to_mhz(gpu.max_clock_hz):.0f}",
                system.pmt_backend,
                system.slurm_energy_plugin,
                "yes" if system.allow_user_freq_control else "no",
                entry.origin if entry else "builtin",
            ]
        )
    print(
        render_table(
            ["system", "GPUs per node", "max clock [MHz]", "PMT backend",
             "Slurm energy plugin", "user clock control", "catalog"],
            rows,
            title="available systems (Table I presets + catalog)",
        )
    )
    return 0


def cmd_calibrate_sweep(args) -> int:
    from .catalog.fit import run_calibration_sweep

    system = by_name(args.system)
    clocks = None
    if args.clocks:
        clocks = [float(c) for c in args.clocks.split(",") if c.strip()]
    result = run_calibration_sweep(
        system,
        args.out_dir,
        clocks_mhz=clocks,
        period_s=args.period,
        window_s=args.window,
    )
    print(
        f"swept {result.system}: {result.n_probes} probe windows across "
        f"{len(result.clocks_mhz)} clocks "
        f"({', '.join(f'{c:.0f}' for c in result.clocks_mhz)} MHz), "
        f"{result.elapsed_s:.2f} simulated s"
    )
    print(f"trace    : {result.trace_path}")
    print(f"pmt dump : {result.dump_path}")
    print(f"schedule : {result.schedule_path}")
    return 0


def cmd_calibrate_fit(args) -> int:
    from .catalog import write_spec_file
    from .catalog.fit import (
        fit_from_dump,
        fit_from_trace,
        fit_to_spec_payload,
    )

    if args.trace:
        fit = fit_from_trace(args.trace)
    elif args.dump:
        if not args.schedule:
            raise SystemExit("--dump requires --schedule (the sweep sidecar)")
        fit = fit_from_dump(args.dump, args.schedule)
    else:
        raise SystemExit("provide --trace, or --dump with --schedule")
    if args.json:
        print(json.dumps(
            {"schema": 1, "kind": "calibration-fit", **fit.to_dict()},
            indent=1, sort_keys=True,
        ))
    else:
        rows = [
            ["P_idle [W]", f"{fit.idle_power_w:.2f}"],
            ["P_dyn [W]", f"{fit.dynamic_power_w:.2f}"],
            ["alpha", f"{fit.power_exponent:.4f}"],
            ["FP64 peak [GFLOP/s]", f"{fit.fp_throughput / 1e9:.1f}"],
            ["mem BW [GB/s]", f"{fit.mem_bandwidth / 1e9:.1f}"],
        ]
        for k in fit.kernels:
            rows.append([
                f"{k.name} eff / kappa",
                f"{k.efficiency:.3f} / {k.compute_fraction_max:.3f}",
            ])
        print(render_table(
            ["parameter", "fitted value"], rows,
            title=f"calibration fit: {fit.gpu_name or fit.system} "
                  f"({fit.n_windows} windows, "
                  f"{len(fit.clocks_mhz)} clocks)",
        ))
    if args.out:
        base = by_name(args.base_system) if args.base_system else None
        if base is None:
            raise SystemExit(
                "--out requires --base-system (CPU/node/measurement "
                "sections are inherited from it)"
            )
        payload = fit_to_spec_payload(fit, base, name=args.name)
        write_spec_file(args.out, payload)
        print(f"spec written: {args.out}")
    return 0


def _calibrate_smoke(args) -> int:
    """Sweep + fit round-trip against ground truth; exit 1 on drift."""
    import tempfile

    from .catalog.fit import (
        fit_from_dump,
        fit_from_trace,
        run_calibration_sweep,
        verify_fit,
    )

    power_tol, roofline_tol = 0.02, 0.05
    system = by_name(args.system)
    spec = system.gpu_spec()
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-calibrate-") as tmp:
        result = run_calibration_sweep(system, tmp)
        fits = {
            "trace": fit_from_trace(result.trace_path),
            "dump": fit_from_dump(result.dump_path, result.schedule_path),
        }
        for label, fit in fits.items():
            errors = verify_fit(fit, spec)
            checks = {
                "idle_power_w": (errors["idle_power_w"], power_tol),
                "dynamic_power_w": (errors["dynamic_power_w"], power_tol),
                "power_exponent": (errors["power_exponent"], power_tol),
                "fp_throughput": (errors["fp_throughput"], power_tol),
                "mem_bandwidth": (errors.get("mem_bandwidth", 0.0),
                                  power_tol),
            }
            for name, kerrs in errors.get("kernels", {}).items():
                for key, err in kerrs.items():
                    checks[f"{name}.{key}"] = (err, roofline_tol)
            for key, (err, tol) in checks.items():
                status = "PASS" if err <= tol else "FAIL"
                if err > tol:
                    failures.append(f"{label}:{key}")
                print(f"{status} {label:5s} {key:40s} "
                      f"err={err:.2e} tol={tol:.0%}")
    if failures:
        print(f"calibration smoke FAILED on {system.name}: "
              f"{', '.join(failures)}")
        return 1
    print(f"calibration smoke passed on {system.name} "
          f"(power within {power_tol:.0%}, roofline within "
          f"{roofline_tol:.0%})")
    return 0


CALIBRATE_COMMANDS = {
    "sweep": cmd_calibrate_sweep,
    "fit": cmd_calibrate_fit,
}


def cmd_calibrate(args) -> int:
    if args.smoke:
        return _calibrate_smoke(args)
    if not args.calibrate_command:
        raise SystemExit(
            "choose a calibrate subcommand (sweep | fit) or pass --smoke"
        )
    return CALIBRATE_COMMANDS[args.calibrate_command](args)


def cmd_run(args) -> int:
    system = by_name(args.system)
    max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
    policy = _policy(args.policy, args.freq, args.freq_map, max_mhz)
    result, cluster = _run_once(args, policy)

    print(
        f"workload={_workload(args.workload)} system={args.system} "
        f"ranks={args.ranks} particles/rank={args.particles:g} "
        f"steps={args.steps} policy={policy.name}"
    )
    print(
        f"time-to-solution : {format_time(result.elapsed_s)}\n"
        f"GPU energy       : {format_energy(result.gpu_energy_j)}\n"
        f"total energy     : {format_energy(result.report.total_j())}\n"
        f"EDP (GPU)        : {result.edp:.1f} J*s\n"
        f"clock changes    : {result.clock_set_calls}"
    )
    print()
    print(
        render_breakdown(
            device_breakdown_percent(result.report),
            title="energy per device class [%]",
        )
    )
    print()
    print(
        render_breakdown(
            function_share_percent(result.report, "GPU"),
            title="GPU energy per function [%]",
        )
    )
    if args.report:
        result.report.save(args.report)
        print(f"\nper-rank report written to {args.report}")
    return 0


def cmd_tune(args) -> int:
    system = by_name(args.system)
    cluster = Cluster(system, 1)
    try:
        gpu = cluster.gpus[0]
        lo = args.min_freq
        hi = int(to_mhz(gpu.spec.max_clock_hz))
        if gpu.spec.vendor == "nvidia":
            handle = nvml.nvmlDeviceGetHandleByIndex(0)
            freqs: Sequence[float] = nvml.supported_clock_window_mhz(
                handle, lo, hi
            )[:: args.stride]
        else:
            step = int(to_mhz(gpu.spec.clock_step_hz)) * args.stride
            freqs = list(range(hi, lo - 1, -step))
        with_gravity = _workload(args.workload) == "EvrardCollapse"
        best = tune_all_sph_functions(
            gpu, int(args.particles), freqs, with_gravity=with_gravity,
            iterations=args.iterations,
        )
    finally:
        cluster.detach_management_library()
    if args.json:
        print(
            json.dumps(
                {
                    "schema": 1,
                    "kind": "tune",
                    "system": args.system,
                    "workload": _workload(args.workload),
                    "clock_window_mhz": [lo, hi],
                    "n_clocks": len(freqs),
                    "freq_map": best,
                },
                indent=1,
                sort_keys=True,
            )
        )
        return 0
    print(
        render_table(
            ["function", "best-EDP clock [MHz]"],
            sorted(best.items(), key=lambda kv: -kv[1]),
            title=f"tuned frequencies on {args.system} "
                  f"({len(freqs)} clocks in [{lo}, {hi}] MHz)",
        )
    )
    print("\nManDyn frequency map (pass via `run --policy mandyn "
          "--freq-map '<json>'`):")
    print(json.dumps(best))
    return 0


def cmd_compare(args) -> int:
    system = by_name(args.system)
    max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
    policies = {
        "baseline": baseline_policy(max_mhz),
        f"static {args.freq:.0f}": StaticFrequencyPolicy(args.freq),
        "dvfs": DvfsPolicy(),
        "mandyn": _policy("mandyn", args.freq, args.freq_map, max_mhz),
    }
    runs = {}
    for label, policy in policies.items():
        runs[label], _ = _run_once(args, policy)
    base = runs["baseline"]
    if args.json:
        payload = {
            "schema": 1,
            "kind": "compare",
            "system": args.system,
            "workload": _workload(args.workload),
            "baseline": "baseline",
            "rows": {
                label: {
                    "elapsed_s": res.elapsed_s,
                    "gpu_energy_j": res.gpu_energy_j,
                    "rel_time": res.elapsed_s / base.elapsed_s,
                    "rel_energy": res.gpu_energy_j / base.gpu_energy_j,
                    "rel_edp": (
                        res.elapsed_s
                        * res.gpu_energy_j
                        / (base.elapsed_s * base.gpu_energy_j)
                    ),
                }
                for label, res in runs.items()
            },
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    rows = []
    for label, res in runs.items():
        t = res.elapsed_s / base.elapsed_s
        e = res.gpu_energy_j / base.gpu_energy_j
        rows.append([label, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}"])
    print(
        render_table(
            ["policy", "time", "GPU energy", "EDP"],
            rows,
            title=f"normalized policy comparison on {args.system}",
        )
    )
    return 0


def cmd_report(args) -> int:
    """Post-hoc analysis of a saved energy report (run --report ...)."""
    from .core import EnergyReport, run_metrics

    report = EnergyReport.load(args.path)
    metrics = run_metrics(report)
    gpu_metrics = run_metrics(report, gpu_only=True)
    print(
        f"ranks            : {len(report.ranks)}\n"
        f"window time      : {format_time(metrics.time_s)}\n"
        f"total energy     : {format_energy(metrics.energy_j)}\n"
        f"GPU energy       : {format_energy(gpu_metrics.energy_j)}\n"
        f"EDP (total)      : {metrics.edp:.1f} J*s"
    )
    print()
    print(
        render_breakdown(
            device_breakdown_percent(report),
            title="energy per device class [%]",
        )
    )
    for device in ("GPU", "CPU"):
        print()
        print(
            render_breakdown(
                function_share_percent(report, device),
                title=f"{device} energy per function [%]",
            )
        )
    return 0


def cmd_diff(args) -> int:
    """Compare two saved energy reports (B vs baseline A)."""
    from .core import EnergyReport, diff_reports

    a = EnergyReport.load(args.baseline)
    b = EnergyReport.load(args.candidate)
    diff = diff_reports(a, b)
    print(
        f"time        : x{diff.time_ratio:.4f}\n"
        f"total energy: x{diff.total_energy_ratio:.4f}\n"
        f"GPU energy  : x{diff.gpu_energy_ratio:.4f}\n"
        f"EDP (GPU)   : x{diff.edp_ratio:.4f}"
    )
    rows = [
        [d.function, f"{d.time_ratio:.4f}", f"{d.gpu_energy_ratio:.4f}",
         f"{d.edp_ratio:.4f}"]
        for d in diff.functions
    ]
    print()
    print(
        render_table(
            ["function", "time", "GPU energy", "EDP"],
            rows,
            title="per-function ratios (candidate / baseline)",
        )
    )
    return 0


def cmd_sacct(args) -> int:
    cluster = Cluster(by_name(args.system), args.ranks)
    controller = SlurmController()
    controller.accounting.enable_energy_accounting()

    def app(cl, job):
        return run_instrumented(
            cl, _workload(args.workload), args.particles, args.steps
        )

    try:
        job = controller.submit(
            JobSpec(
                name=args.job_name,
                n_nodes=cluster.n_nodes,
                n_tasks=args.ranks,
            ),
            cluster,
            app,
        )
    finally:
        cluster.detach_management_library()
    rows = controller.accounting.sacct(
        job.job_id,
        fields=("JobID", "JobName", "State", "Elapsed", "NNodes",
                "NTasks", "ConsumedEnergy", "ConsumedEnergyRaw"),
    )
    print(render_table(list(rows[0]), [list(r.values()) for r in rows]))
    pmt_j = job.result.report.total_j()
    print(
        f"\ninstrumented (PMT) window: {format_energy(pmt_j)} "
        f"({pmt_j / job.consumed_energy_j:.1%} of ConsumedEnergy)"
    )
    return 0


def _trace_run(args):
    """Shared record/summary path: one traced instrumented run."""
    from .telemetry import TraceCollector

    system = by_name(args.system)
    max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
    policy = _policy(args.policy, args.freq, args.freq_map, max_mhz)
    collector = TraceCollector(max_events=args.max_events)
    result, _ = _run_once(args, policy, telemetry=collector)
    return collector, result, policy


def cmd_trace_record(args) -> int:
    from .telemetry import (
        max_drift_s,
        reconcile_with_report,
        write_chrome_trace,
        write_trace_jsonl,
    )

    collector, result, policy = _trace_run(args)
    label = (
        f"{_workload(args.workload)} on {args.system} "
        f"({policy.name}, {args.steps} steps)"
    )
    print(
        f"recorded {len(collector.events)} trace events "
        f"({len(collector.spans())} spans) over {args.steps} steps; "
        f"{collector.dropped} dropped"
    )
    rows = reconcile_with_report(collector.events, result.report)
    print(f"max trace-vs-report drift: {max_drift_s(rows):.2e} s")
    if args.export:
        write_chrome_trace(args.export, collector.events, label=label)
        print(f"Chrome trace_event JSON written to {args.export} "
              "(open in Perfetto / chrome://tracing)")
    if args.jsonl:
        write_trace_jsonl(args.jsonl, collector.events)
        print(f"JSONL trace written to {args.jsonl}")
    if args.report:
        result.report.save(args.report)
        print(f"per-rank energy report written to {args.report}")
    return 0


def cmd_trace_summary(args) -> int:
    from .telemetry import (
        max_drift_s,
        reconcile_with_report,
        render_summary,
        summarize_functions,
    )

    collector, result, policy = _trace_run(args)
    if args.json:
        rows = reconcile_with_report(collector.events, result.report)
        functions = summarize_functions(collector.events)
        payload = {
            "schema": 1,
            "kind": "trace-summary",
            "workload": _workload(args.workload),
            "system": args.system,
            "ranks": args.ranks,
            "steps": args.steps,
            "policy": policy.name,
            "snapshot": collector.metrics.snapshot(),
            "functions": {
                s.function: {
                    "spans": s.spans,
                    "total_s": s.total_s,
                    "mean_s": s.mean_s,
                    "min_s": s.min_s,
                    "max_s": s.max_s,
                }
                for s in functions.values()
            },
            "reconciliation": [
                {
                    "function": r.function,
                    "trace_time_s": r.trace_time_s,
                    "report_time_s": r.report_time_s,
                    "drift_s": r.drift_s,
                    "ok": r.ok(),
                }
                for r in rows
            ],
            "max_drift_s": max_drift_s(rows),
            "events": len(collector.events),
            "dropped": collector.dropped,
            "comm": result.report.comm,
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(
        f"workload={_workload(args.workload)} system={args.system} "
        f"ranks={args.ranks} steps={args.steps} policy={policy.name}"
    )
    print()
    print(render_summary(collector, result.report))
    return 0


def cmd_trace_export(args) -> int:
    from .telemetry import read_trace_jsonl, write_chrome_trace

    events = read_trace_jsonl(args.input)
    write_chrome_trace(args.output, events)
    print(
        f"re-rendered {len(events)} events from {args.input} as Chrome "
        f"trace_event JSON at {args.output}"
    )
    return 0


TRACE_COMMANDS = {
    "record": cmd_trace_record,
    "summary": cmd_trace_summary,
    "export": cmd_trace_export,
}


def cmd_trace(args) -> int:
    return TRACE_COMMANDS[args.trace_command](args)


def cmd_faults_list(args) -> int:
    from .faults import SCENARIO_DESCRIPTIONS, build_plan, scenario_names

    rows = []
    for name in scenario_names():
        plan = build_plan(name, seed=args.seed)
        rows.append([name, str(len(plan)), SCENARIO_DESCRIPTIONS[name]])
    print(
        render_table(
            ["scenario", "specs", "description"],
            rows,
            title=f"fault scenarios (seed {args.seed})",
        )
    )
    return 0


def cmd_faults_run(args) -> int:
    """One resilient run under a fault scenario + degradation report."""
    from .core import ResilienceConfig
    from .faults import FaultInjector, build_plan
    from .pmt import PmtSampler, create
    from .telemetry import TraceCollector

    system = by_name(args.system)
    max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
    policy = _policy(args.policy, args.freq, args.freq_map, max_mhz)
    plan = build_plan(args.scenario, seed=args.seed, n_ranks=args.ranks)
    injector = FaultInjector(plan)
    collector = TraceCollector(max_events=args.max_events)
    cluster = Cluster(system, args.ranks)
    sampler = None
    try:
        if system.pmt_backend in ("nvml", "rocm"):
            sensor = injector.wrap_sensor(
                create(system.pmt_backend, device_index=0), rank=0
            )
            sampler = PmtSampler(
                sensor, cluster.clocks[0], period_s=args.sample_period
            )
            sampler.start()
        result = run_instrumented(
            cluster,
            _workload(args.workload),
            args.particles,
            args.steps,
            policy=policy,
            telemetry=collector,
            resilience=ResilienceConfig(),
            faults=injector,
        )
        if sampler is not None:
            sampler.stop()
    finally:
        cluster.detach_management_library()

    print(plan.describe())
    print()
    status = f"{result.steps}/{args.steps}"
    if result.preempted:
        status += " (preempted)"
    degraded = (
        ", ".join(str(r) for r in result.degraded_ranks)
        if result.degraded_ranks
        else "none"
    )
    print(
        f"steps completed  : {status}\n"
        f"faults injected  : {result.faults_injected}\n"
        f"retries          : {result.retries}\n"
        f"degraded ranks   : {degraded}\n"
        f"time-to-solution : {format_time(result.elapsed_s)}\n"
        f"GPU energy       : {format_energy(result.gpu_energy_j)}"
    )
    if sampler is not None:
        print(
            f"power sampling   : {len(sampler.samples)} samples, "
            f"{sampler.failed_reads} failed reads, "
            f"{len(sampler.gaps)} gaps bridged, "
            f"{sampler.monotonicity_violations} readings clamped"
        )
    if injector.records:
        print()
        rows = [
            [
                f"{r.t_s:.6f}",
                "-" if r.rank is None else str(r.rank),
                r.kind.value,
                r.op,
                str(r.call_index),
            ]
            for r in injector.records
        ]
        print(
            render_table(
                ["t [s]", "rank", "kind", "op", "call #"],
                rows,
                title="injected faults",
            )
        )
    for rank_report in result.report.ranks:
        if rank_report.degraded:
            print(
                f"\nrank {rank_report.rank} DEGRADED: "
                f"{rank_report.degraded_reason}"
            )
    if args.report:
        result.report.save(args.report)
        print(f"\nper-rank energy report written to {args.report}")
    return 0


FAULTS_COMMANDS = {
    "list": cmd_faults_list,
    "run": cmd_faults_run,
}


def cmd_faults(args) -> int:
    return FAULTS_COMMANDS[args.faults_command](args)


def _campaign_spec_path(directory: str) -> str:
    import os.path

    from .campaign.store import SPEC_NAME

    return os.path.join(directory, SPEC_NAME)


def _campaign_execute(args, spec) -> int:
    """Shared run/resume path: drain the spec's grid into --dir."""
    from .campaign import ExecutorConfig, run_campaign
    from .telemetry import TraceCollector

    config = ExecutorConfig(
        workers=args.workers,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        max_units=args.max_units,
    )
    collector = TraceCollector(max_events=100_000)
    status, store = run_campaign(
        spec, args.dir, config=config, telemetry=collector
    )
    print(f"campaign {spec.name!r} in {args.dir}")
    print(status.describe())
    counts = store.counts()
    print(
        f"store: {counts['done']} done, {counts['failed']} failed "
        f"(trace: {store.trace_path})"
    )
    if status.failed:
        for label in status.failed_units:
            print(f"  failed: {label}")
        return 1
    return 0


def cmd_campaign_run(args) -> int:
    from .campaign import CampaignSpec

    return _campaign_execute(args, CampaignSpec.load(args.spec))


def cmd_campaign_resume(args) -> int:
    import os.path

    from .campaign import CampaignSpec

    path = _campaign_spec_path(args.dir)
    if not os.path.exists(path):
        raise SystemExit(
            f"{path} not found — has `campaign run` been invoked "
            f"with this --dir?"
        )
    return _campaign_execute(args, CampaignSpec.load(path))


def cmd_campaign_status(args) -> int:
    import json as _json
    import os.path

    from .campaign import CampaignSpec, RunStore, build_status_doc, status_rows

    store = RunStore(args.dir)
    spec = None
    spec_path = _campaign_spec_path(args.dir)
    if os.path.exists(spec_path):
        spec = CampaignSpec.load(spec_path)
    # The exact document the service's /campaigns/{id} endpoint embeds —
    # one serializer, two transports.
    doc = build_status_doc(store, spec)
    if args.json:
        print(_json.dumps(doc, indent=1, sort_keys=True))
        return 0
    title = f"campaign {store.campaign or '?'} in {args.dir}"
    print(render_table(["state", "units"], status_rows(doc), title=title))
    return 0


def cmd_campaign_report(args) -> int:
    import os.path

    from .campaign import (
        CampaignSpec,
        RunStore,
        build_summary,
        render_summary as render_campaign_summary,
        summary_json,
        write_summary,
    )

    store = RunStore(args.dir)
    keys = None
    spec_path = _campaign_spec_path(args.dir)
    if os.path.exists(spec_path):
        spec = CampaignSpec.load(spec_path)
        keys = [unit.key for unit in spec.expand()]
    summary = build_summary(store, keys=keys)
    if not summary["groups"]:
        raise SystemExit(f"no completed runs in {args.dir}")
    if args.out:
        write_summary(summary, args.out)
    if args.json:
        sys.stdout.write(summary_json(summary))
    else:
        print(render_campaign_summary(summary))
        if args.out:
            print(f"\nsummary JSON written to {args.out}")
    return 0


CAMPAIGN_COMMANDS = {
    "run": cmd_campaign_run,
    "resume": cmd_campaign_resume,
    "status": cmd_campaign_status,
    "report": cmd_campaign_report,
}


def cmd_campaign(args) -> int:
    return CAMPAIGN_COMMANDS[args.campaign_command](args)


def cmd_serve(args) -> int:
    import asyncio

    from .service import CampaignService, SchedulerConfig, ServiceConfig
    from .service.app import run_until_interrupted

    config = ServiceConfig(
        root=args.root,
        shared_cache=not args.no_shared_cache,
        scheduler=SchedulerConfig(
            max_running=args.max_running,
            per_tenant_running=args.per_tenant_running,
            queue_depth=args.queue_depth,
            retry_after_s=args.retry_after,
        ),
        stall_after_s=args.stall_after,
    )
    service = CampaignService(config)

    def ready(host: str, port: int) -> None:
        print(f"campaign service at http://{host}:{port} "
              f"(store root: {args.root})", flush=True)

    async def _serve() -> None:
        task = asyncio.ensure_future(
            run_until_interrupted(
                service, host=args.host, port=args.port, ready=ready
            )
        )
        if args.duration is not None:
            await asyncio.sleep(args.duration)
            task.cancel()
        await asyncio.gather(task, return_exceptions=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _monitor_run(args):
    """Shared monitor snapshot/report/serve path: one monitored run."""
    from .core import ResilienceConfig
    from .monitor import Monitor, MonitorConfig
    from .telemetry import TraceCollector

    system = by_name(args.system)
    max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
    policy = _policy(args.policy, args.freq, args.freq_map, max_mhz)
    collector = TraceCollector(max_events=args.max_events)
    monitor = Monitor(
        MonitorConfig(period_s=args.period), telemetry=collector
    )
    faults = None
    resilience = None
    if args.scenario:
        from .faults import FaultInjector, build_plan

        faults = FaultInjector(
            build_plan(args.scenario, seed=args.seed, n_ranks=args.ranks)
        )
        resilience = ResilienceConfig()
    cluster = Cluster(system, args.ranks)
    try:
        result = run_instrumented(
            cluster,
            _workload(args.workload),
            args.particles,
            args.steps,
            policy=policy,
            telemetry=collector,
            resilience=resilience,
            faults=faults,
            monitor=monitor,
        )
    finally:
        cluster.detach_management_library()
    return monitor, collector, result, policy


def _monitor_meta(args, policy) -> Dict[str, object]:
    meta = {
        "workload": _workload(args.workload),
        "system": args.system,
        "ranks": args.ranks,
        "steps": args.steps,
        "policy": policy.name,
    }
    if args.scenario:
        meta["scenario"] = args.scenario
        meta["seed"] = args.seed
    return meta


def _monitor_title(args) -> str:
    return (
        f"{_workload(args.workload)} on {args.system} "
        f"({args.ranks} rank(s), {args.steps} steps)"
    )


def _print_alerts(alerts) -> None:
    if not alerts:
        print("no alerts fired")
        return
    rows = [
        [
            a.rule.name,
            a.rule.severity,
            str(a.rank),
            f"{a.t_fired_s:.4f}",
            "-" if a.t_resolved_s is None else f"{a.t_resolved_s:.4f}",
            f"{a.value:g}",
        ]
        for a in alerts
    ]
    print(
        render_table(
            ["rule", "severity", "rank", "fired [s]", "resolved [s]",
             "value"],
            rows,
            title="alerts",
        )
    )


def cmd_monitor_snapshot(args) -> int:
    from .monitor import write_json_snapshot

    monitor, collector, result, policy = _monitor_run(args)
    data = monitor.snapshot(
        collector=collector,
        report=result.report,
        title=_monitor_title(args),
        meta=_monitor_meta(args, policy),
    )
    if args.prom:
        monitor.write_prom(args.prom)
    if args.out:
        write_json_snapshot(args.out, data)
    if args.json:
        print(json.dumps(data, indent=1, sort_keys=True))
        return 0
    rows = [
        [
            f"{s['name']}[{s['rank']}]",
            str(s["n_samples"]),
            f"{s['last']:g}",
            f"{s['min']:g}",
            f"{s['max']:g}",
            f"{s['mean']:g}",
        ]
        for s in data["series"]
    ]
    print(
        render_table(
            ["series", "samples", "last", "min", "max", "mean"],
            rows,
            title=data["title"],
        )
    )
    print()
    _print_alerts(monitor.alerts)
    if data["gaps"]:
        print(f"\nsampler gaps: {len(data['gaps'])}")
    if args.prom:
        print(f"\nPrometheus metrics written to {args.prom}")
    if args.out:
        print(f"snapshot JSON written to {args.out}")
    return 0


def cmd_monitor_report(args) -> int:
    monitor, collector, result, policy = _monitor_run(args)
    monitor.write_report(
        args.out,
        collector=collector,
        report=result.report,
        title=_monitor_title(args),
        meta=_monitor_meta(args, policy),
    )
    if args.prom:
        monitor.write_prom(args.prom)
        print(f"Prometheus metrics written to {args.prom}")
    n_series = len(monitor.sampler.series_names())
    print(
        f"HTML report written to {args.out} "
        f"({n_series} series, {len(monitor.alerts)} alert(s), "
        f"{len(monitor.sampler.gaps)} sampler gap(s))"
    )
    return 0


def cmd_monitor_serve(args) -> int:
    import time

    monitor, collector, result, policy = _monitor_run(args)
    server = monitor.serve(host=args.host, port=args.port)
    print(f"serving Prometheus metrics at {server.url}")
    _print_alerts(monitor.alerts)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        monitor.stop_serving()
    return 0


def cmd_monitor_watch(args) -> int:
    import time

    from .campaign import RunStore
    from .monitor import stalled_worker_alerts

    store = RunStore(args.dir)
    iteration = 0
    stalled = False
    while True:
        iteration += 1
        heartbeats = store.read_heartbeats()
        counts = store.counts()
        busy = sum(
            1 for r in heartbeats.values() if r.get("state") != "idle"
        )
        print(
            f"[{iteration}] {args.dir}: {counts['done']} done, "
            f"{counts['failed']} failed, {busy}/{len(heartbeats)} "
            f"lane(s) busy"
        )
        alerts = stalled_worker_alerts(
            heartbeats, time.time(), stall_after_s=args.stall_after
        )
        for alert in alerts:
            stalled = True
            print(
                f"  ALERT {alert.rule.name}: lane {alert.rank} silent "
                f"for {alert.value:.0f}s"
            )
        if args.iterations and iteration >= args.iterations:
            break
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
    return 1 if stalled else 0


MONITOR_COMMANDS = {
    "snapshot": cmd_monitor_snapshot,
    "report": cmd_monitor_report,
    "serve": cmd_monitor_serve,
    "watch": cmd_monitor_watch,
}


def cmd_monitor(args) -> int:
    return MONITOR_COMMANDS[args.monitor_command](args)


def _profile_trace_path(path: str) -> str:
    """Resolve a trace argument: a merged JSONL file, or a unit trace
    directory holding one (``traces/<key>/`` of a recorded campaign)."""
    import os.path

    from .telemetry import merged_trace_path

    if os.path.isdir(path):
        return str(merged_trace_path(path))
    return path


def cmd_profile_record(args) -> int:
    """Drain a campaign under one root trace context.

    Every unit derives a child context from the root, every rank
    process a grandchild; the per-process shards merge into one
    clock-aligned ``merged.jsonl`` per unit under ``<dir>/traces/``.
    """
    if args.smoke:
        return _profile_smoke(args)
    if not args.spec or not args.dir:
        raise SystemExit("--spec and --dir are required (or pass --smoke)")

    from .campaign import CampaignSpec, ExecutorConfig, run_campaign
    from .telemetry import TraceCollector, mint_context

    spec = CampaignSpec.load(args.spec)
    config = ExecutorConfig(
        workers=args.workers,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        max_units=args.max_units,
    )
    collector = TraceCollector(max_events=100_000)
    context = mint_context(seed=args.seed)
    collector.configure_tracing(context)
    status, store = run_campaign(
        spec, args.dir, config=config, telemetry=collector
    )
    print(f"campaign {spec.name!r} traced as {context.trace_id}")
    print(f"traceparent: {context.to_traceparent()}")
    print(status.describe())
    for key in sorted(store.unit_trace_keys()):
        state = "merged" if store.has_unit_trace(key) else "shards only"
        print(f"  {key}: {store.unit_trace_dir(key)} ({state})")
    print(f"campaign trace: {store.trace_path}")
    return 1 if status.failed else 0


def _profile_smoke(args) -> int:
    """Traced 2-rank x 2-lane campaign + correlation checks; exit 1 on
    any break in the request-to-rank-process timeline."""
    import tempfile

    from .campaign import CampaignSpec, ExecutorConfig, run_campaign
    from .telemetry import (
        TraceCollector,
        critical_path,
        gating_consistent_with_waits,
        mint_context,
        read_trace_jsonl,
    )
    from .telemetry.profile import RANK_PROCESS_SPAN, merged_trace_path

    spec = CampaignSpec(
        name="profile-smoke",
        workloads=("SedovBlast",),
        particles=(1.0e4,),
        steps=2,
        ranks=2,
        seeds=(0, 1),
        comm_backend="process",
    )
    collector = TraceCollector(max_events=100_000)
    context = mint_context(seed="profile-smoke")
    collector.configure_tracing(context)
    checks: List[tuple] = []
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        status, store = run_campaign(
            spec, tmp, config=ExecutorConfig(workers=2), telemetry=collector
        )
        checks.append(("campaign-clean", status.failed == 0))
        for unit in spec.expand():
            key = unit.key
            merged = store.has_unit_trace(key)
            checks.append((f"merged-trace:{key}", merged))
            if not merged:
                continue
            events = read_trace_jsonl(
                str(merged_trace_path(str(store.unit_trace_dir(key))))
            )
            ids = {
                e.args["trace_id"]
                for e in events
                if getattr(e, "args", None) and "trace_id" in e.args
            }
            checks.append(
                (f"one-trace-id:{key}", ids == {context.trace_id})
            )
            rank_spans = [
                e for e in events
                if getattr(e, "name", None) == RANK_PROCESS_SPAN
            ]
            checks.append(
                (
                    f"rank-process-spans:{key}",
                    len(rank_spans) == spec.ranks
                    and all(
                        s.args.get("parent_span_id") for s in rank_spans
                    ),
                )
            )
            steps = critical_path(events)
            checks.append(
                (f"critical-path:{key}", len(steps) == spec.steps)
            )
            payload = store.load_result(key)
            waits = (
                payload.get("result", {})
                .get("report", {})
                .get("comm", {})
                or {}
            ).get("rank_wait_s", [])
            checks.append(
                (
                    f"gating-vs-waits:{key}",
                    gating_consistent_with_waits(steps, waits),
                )
            )
        failures = []
        for name, ok in checks:
            print(f"{'PASS' if ok else 'FAIL'} {name}")
            if not ok:
                failures.append(name)
    if failures:
        print(f"tracing smoke FAILED: {', '.join(failures)}")
        return 1
    print(
        f"tracing smoke passed ({spec.ranks} ranks x 2 lanes, "
        f"trace {context.trace_id})"
    )
    return 0


def cmd_profile_critical_path(args) -> int:
    """Per-step gating rank of a merged trace."""
    from .telemetry import critical_path, read_trace_jsonl

    path = _profile_trace_path(args.trace)
    steps = critical_path(read_trace_jsonl(path))
    if not steps:
        raise SystemExit(f"no step-annotated kernel spans in {path}")
    if args.json:
        payload = {
            "schema": 1,
            "kind": "critical-path",
            "trace": path,
            "steps": [
                {
                    "step": s.step,
                    "gating_rank": s.gating_rank,
                    "arrival_s": s.arrival_s,
                    "busy_s": s.busy_s,
                    "slack_s": s.slack_s,
                }
                for s in steps
            ],
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    rows = [
        [
            str(s.step),
            str(s.gating_rank),
            f"{max(s.arrival_s.values()):.6g}",
            f"{max(s.slack_s.values()):.3g}",
        ]
        for s in steps
    ]
    print(
        render_table(
            ["step", "gating rank", "arrival [s]", "max slack [s]"],
            rows,
            title=f"critical path of {path}",
        )
    )
    counts: Dict[int, int] = {}
    for s in steps:
        counts[s.gating_rank] = counts.get(s.gating_rank, 0) + 1
    dominant = min(counts, key=lambda r: (-counts[r], r))
    print(f"\nrank {dominant} gates {counts[dominant]} of {len(steps)} steps")
    return 0


def cmd_profile_flame(args) -> int:
    """Collapsed-stack flamegraph export of a merged trace."""
    from .telemetry import (
        atomic_write_lines,
        collapsed_stacks,
        read_trace_jsonl,
    )

    path = _profile_trace_path(args.trace)
    lines = collapsed_stacks(read_trace_jsonl(path))
    if not lines:
        raise SystemExit(f"no kernel spans in {path}")
    if args.out:
        atomic_write_lines(args.out, lines)
        print(
            f"{len(lines)} collapsed stacks written to {args.out} "
            "(feed to flamegraph.pl or speedscope)"
        )
        return 0
    for line in lines:
        print(line)
    return 0


def cmd_profile_diff(args) -> int:
    """Per-function regression diff of two merged traces (B vs A)."""
    from .telemetry import diff_traces, read_trace_jsonl

    a_events = read_trace_jsonl(_profile_trace_path(args.baseline))
    b_events = read_trace_jsonl(_profile_trace_path(args.candidate))
    result = diff_traces(a_events, b_events, threshold=args.threshold)
    if args.json:
        print(
            json.dumps(
                {"schema": 1, "kind": "trace-diff", **result},
                indent=1,
                sort_keys=True,
            )
        )
    else:
        rows = []
        for row in result["functions"]:
            delta = row["delta_frac"]
            rows.append(
                [
                    row["function"],
                    f"{row['time_a_s']:.6g}",
                    f"{row['time_b_s']:.6g}",
                    "new" if delta == float("inf") else f"{100 * delta:+.1f}%",
                    "REGRESSED" if row["regressed"] else "",
                ]
            )
        print(
            render_table(
                ["function", "A [s]", "B [s]", "delta", ""],
                rows,
                title="per-function trace diff (B vs A)",
            )
        )
        total = result["total_delta_frac"]
        total_txt = (
            "new" if total == float("inf") else f"{100 * total:+.2f}%"
        )
        print(
            f"\ntotal: {result['total_a_s']:.6g} s -> "
            f"{result['total_b_s']:.6g} s ({total_txt}, "
            f"threshold {result['threshold']:.0%})"
        )
    if result["regressions"]:
        print(f"REGRESSIONS: {', '.join(result['regressions'])}")
        return 1
    return 0


PROFILE_COMMANDS = {
    "record": cmd_profile_record,
    "critical-path": cmd_profile_critical_path,
    "flame": cmd_profile_flame,
    "diff": cmd_profile_diff,
}


def cmd_profile(args) -> int:
    return PROFILE_COMMANDS[args.profile_command](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GPU frequency scaling for astrophysics simulations "
            "(SC 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    systems_p = sub.add_parser(
        "systems",
        help="list the known systems (Table-I presets + catalog specs)",
    )
    systems_p.add_argument("--json", action="store_true",
                           help="print a stable machine-readable listing "
                                "(name, vendor, clocks, source file, "
                                "schema version)")
    systems_p.add_argument("--validate", action="store_true",
                           help="validate every shipped catalog spec file "
                                "and exit")

    cal_p = sub.add_parser(
        "calibrate",
        help="fit model parameters from a measured trace (repro.catalog)",
    )
    cal_p.add_argument("--smoke", action="store_true",
                       help="sweep a simulated device and check the fit "
                            "recovers its spec (CI gate)")
    cal_p.add_argument("--system", default="miniHPC",
                       help="system to smoke-test (with --smoke)")
    cal_sub = cal_p.add_subparsers(dest="calibrate_command", required=False)

    csweep_p = cal_sub.add_parser(
        "sweep",
        help="drive a simulated device through the probe schedule and "
             "record trace + PMT dump + schedule sidecar",
    )
    csweep_p.add_argument("--system", default="miniHPC",
                          help="system to sweep (see `systems`)")
    csweep_p.add_argument("--out-dir", required=True,
                          help="directory for the sweep artifacts")
    csweep_p.add_argument("--clocks", default=None,
                          help="comma-separated probe clocks [MHz] "
                               "(default: 6 bins spanning the clock range)")
    csweep_p.add_argument("--period", type=float, default=0.01,
                          help="power sampling period [simulated s]")
    csweep_p.add_argument("--window", type=float, default=0.2,
                          help="probe window length [simulated s]; must be "
                               "a multiple of --period")

    cfit_p = cal_sub.add_parser(
        "fit",
        help="fit P_idle/P_dyn/alpha and roofline fractions from sweep "
             "artifacts; optionally emit a catalog spec file",
    )
    cfit_p.add_argument("--trace", default=None,
                        help="telemetry JSONL trace (self-contained)")
    cfit_p.add_argument("--dump", default=None,
                        help="PMT dump file (pairs with --schedule)")
    cfit_p.add_argument("--schedule", default=None,
                        help="schedule sidecar JSON from the sweep")
    cfit_p.add_argument("--json", action="store_true",
                        help="print the fit as a stable JSON document")
    cfit_p.add_argument("--out", default=None,
                        help="write a catalog spec file here "
                             "(.yaml or .json; requires --base-system)")
    cfit_p.add_argument("--base-system", default=None,
                        help="system whose CPU/node/measurement sections "
                             "the emitted spec inherits")
    cfit_p.add_argument("--name", default=None,
                        help="system name of the emitted spec")

    def common(p):
        p.add_argument("--system", default="miniHPC",
                       help="system preset name (see `systems`)")
        p.add_argument("--workload", default="turbulence",
                       help="turbulence | evrard | sedov")
        p.add_argument("--particles", type=float, default=float(450**3),
                       help="particles per rank")
        p.add_argument("--steps", type=int, default=10,
                       help="time-steps to run")
        p.add_argument("--ranks", type=int, default=1,
                       help="MPI ranks (= GPUs/GCDs)")
        p.add_argument("--comm-backend", default="local",
                       choices=("local", "process"), dest="comm_backend",
                       help="rank execution backend: local (sequential, "
                       "in-process) or process (one OS process per rank; "
                       "see docs/parallelism.md)")

    run_p = sub.add_parser("run", help="run one instrumented simulation")
    common(run_p)
    run_p.add_argument("--policy", default="baseline",
                       help="baseline | static | dvfs | mandyn")
    run_p.add_argument("--freq", type=float, default=None,
                       help="static clock / ManDyn default clock [MHz]")
    run_p.add_argument("--freq-map", default=None,
                       help="JSON {function: MHz} for ManDyn")
    run_p.add_argument("--report", default=None,
                       help="write the gathered energy report JSON here")

    tune_p = sub.add_parser("tune", help="find per-function sweet spots")
    common(tune_p)
    tune_p.add_argument("--min-freq", type=int, default=1005,
                        help="lower end of the clock window [MHz]")
    tune_p.add_argument("--stride", type=int, default=3,
                        help="evaluate every Nth supported clock bin")
    tune_p.add_argument("--iterations", type=int, default=3,
                        help="benchmark repetitions per configuration")
    tune_p.add_argument("--json", action="store_true",
                        help="print a stable machine-readable JSON document")

    cmp_p = sub.add_parser("compare",
                           help="baseline vs static vs DVFS vs ManDyn")
    common(cmp_p)
    cmp_p.add_argument("--freq", type=float, default=1005.0,
                       help="static/ManDyn-default clock [MHz]")
    cmp_p.add_argument("--freq-map", default=None,
                       help="JSON {function: MHz} for ManDyn")
    cmp_p.add_argument("--json", action="store_true",
                       help="print a stable machine-readable JSON document")

    report_p = sub.add_parser(
        "report", help="analyze a saved energy-report JSON"
    )
    report_p.add_argument("path", help="report file from `run --report`")

    diff_p = sub.add_parser(
        "diff", help="compare two saved energy reports (A/B)"
    )
    diff_p.add_argument("baseline", help="baseline report JSON")
    diff_p.add_argument("candidate", help="candidate report JSON")

    sacct_p = sub.add_parser("sacct",
                             help="run under Slurm accounting and query it")
    common(sacct_p)
    sacct_p.add_argument("--job-name", default="sphexa",
                         help="Slurm job name")

    trace_p = sub.add_parser(
        "trace",
        help="record/inspect structured run traces (repro.telemetry)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    def trace_common(p):
        common(p)
        p.add_argument("--policy", default="baseline",
                       help="baseline | static | dvfs | mandyn")
        p.add_argument("--freq", type=float, default=None,
                       help="static clock / ManDyn default clock [MHz]")
        p.add_argument("--freq-map", default=None,
                       help="JSON {function: MHz} for ManDyn")
        p.add_argument("--max-events", type=int, default=100_000,
                       help="trace ring-buffer capacity")

    rec_p = trace_sub.add_parser(
        "record", help="run once and export the trace"
    )
    trace_common(rec_p)
    rec_p.add_argument("--export", default=None,
                       help="write Chrome trace_event JSON here (Perfetto)")
    rec_p.add_argument("--jsonl", default=None,
                       help="write the compact JSONL trace here")
    rec_p.add_argument("--report", default=None,
                       help="write the gathered energy report JSON here")

    summ_p = trace_sub.add_parser(
        "summary",
        help="run once and print metrics + trace-vs-report reconciliation",
    )
    trace_common(summ_p)
    summ_p.add_argument("--json", action="store_true",
                        help="print a stable machine-readable JSON document")

    exp_p = trace_sub.add_parser(
        "export", help="re-render a JSONL trace as Chrome trace_event JSON"
    )
    exp_p.add_argument("input", help="JSONL trace from `trace record --jsonl`")
    exp_p.add_argument("output", help="Chrome trace_event JSON destination")

    faults_p = sub.add_parser(
        "faults",
        help="fault-injection scenarios and resilient runs (repro.faults)",
    )
    faults_sub = faults_p.add_subparsers(dest="faults_command", required=True)

    list_p = faults_sub.add_parser(
        "list", help="list the named fault scenarios"
    )
    list_p.add_argument("--seed", type=int, default=0,
                        help="plan seed used for the listing")

    frun_p = faults_sub.add_parser(
        "run",
        help="run one resilient simulation under a fault scenario "
             "and print the degradation report",
    )
    common(frun_p)
    frun_p.add_argument("--scenario", default="chaos",
                        help="fault scenario name (see `faults list`)")
    frun_p.add_argument("--seed", type=int, default=20240,
                        help="fault plan seed (same seed = same faults)")
    frun_p.add_argument("--policy", default="mandyn",
                        help="baseline | static | dvfs | mandyn")
    frun_p.add_argument("--freq", type=float, default=None,
                        help="static clock / ManDyn default clock [MHz]")
    frun_p.add_argument("--freq-map", default=None,
                        help="JSON {function: MHz} for ManDyn")
    frun_p.add_argument("--max-events", type=int, default=100_000,
                        help="trace ring-buffer capacity")
    frun_p.add_argument("--sample-period", type=float, default=0.5,
                        help="power sampling period [simulated s]")
    frun_p.add_argument("--report", default=None,
                        help="write the gathered energy report JSON here")

    camp_p = sub.add_parser(
        "campaign",
        help="resumable experiment campaigns (repro.campaign)",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    def campaign_exec(p):
        p.add_argument("--dir", required=True,
                       help="campaign directory (run store)")
        p.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (1 = serial)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-unit wall-clock timeout [s]")
        p.add_argument("--max-retries", type=int, default=2,
                       help="retries per unit after transient failures")
        p.add_argument("--max-units", type=int, default=None,
                       help="execute at most N missing units (smoke tests)")

    crun_p = camp_sub.add_parser(
        "run", help="execute every missing unit of a campaign spec"
    )
    crun_p.add_argument("--spec", required=True,
                        help="campaign spec JSON (see docs/campaigns.md)")
    campaign_exec(crun_p)

    cres_p = camp_sub.add_parser(
        "resume",
        help="re-drain a campaign directory using its saved spec "
             "(identical to re-running `campaign run`)",
    )
    campaign_exec(cres_p)

    cstat_p = camp_sub.add_parser(
        "status", help="manifest roll-up: done/missing/failed units"
    )
    cstat_p.add_argument("--dir", required=True,
                         help="campaign directory (run store)")
    cstat_p.add_argument("--json", action="store_true",
                         help="print the campaign-status JSON document "
                              "(same serializer as the service API)")

    crep_p = camp_sub.add_parser(
        "report", help="aggregate stored runs into EDP/Pareto summaries"
    )
    crep_p.add_argument("--dir", required=True,
                        help="campaign directory (run store)")
    crep_p.add_argument("--json", action="store_true",
                        help="print the stable summary JSON instead of tables")
    crep_p.add_argument("--out", default=None,
                        help="also write the summary JSON to this path")

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign-as-a-service HTTP control plane "
             "(repro.service)",
    )
    serve_p.add_argument("--root", required=True,
                         help="multi-tenant store root directory")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    serve_p.add_argument("--port", type=int, default=9465,
                         help="bind port (0 = ephemeral)")
    serve_p.add_argument("--max-running", type=int, default=2,
                         help="campaigns executing concurrently")
    serve_p.add_argument("--per-tenant-running", type=int, default=1,
                         help="concurrent campaigns per tenant")
    serve_p.add_argument("--queue-depth", type=int, default=8,
                         help="queued campaigns per tenant before 429")
    serve_p.add_argument("--retry-after", type=float, default=1.0,
                         help="Retry-After hint on 429 responses [s]")
    serve_p.add_argument("--stall-after", type=float, default=120.0,
                         help="heartbeat age that raises a stall alert [s]")
    serve_p.add_argument("--no-shared-cache", action="store_true",
                         help="disable the cross-tenant result cache")
    serve_p.add_argument("--duration", type=float, default=None,
                         help="serve this many wall seconds, then exit "
                              "(default: until Ctrl-C)")

    mon_p = sub.add_parser(
        "monitor",
        help="live monitoring: sampled series, alerts, Prometheus "
             "exposition, HTML reports (repro.monitor)",
    )
    mon_sub = mon_p.add_subparsers(dest="monitor_command", required=True)

    def monitor_common(p):
        common(p)
        p.add_argument("--policy", default="baseline",
                       help="baseline | static | dvfs | mandyn")
        p.add_argument("--freq", type=float, default=None,
                       help="static clock / ManDyn default clock [MHz]")
        p.add_argument("--freq-map", default=None,
                       help="JSON {function: MHz} for ManDyn")
        p.add_argument("--max-events", type=int, default=100_000,
                       help="trace ring-buffer capacity")
        p.add_argument("--period", type=float, default=0.05,
                       help="device sampling period [simulated s]")
        p.add_argument("--scenario", default=None,
                       help="run under this fault scenario "
                            "(see `faults list`)")
        p.add_argument("--seed", type=int, default=20240,
                       help="fault plan seed (with --scenario)")
        p.add_argument("--prom", default=None,
                       help="write Prometheus text metrics to this file")

    msnap_p = mon_sub.add_parser(
        "snapshot",
        help="run once and print the sampled series + alerts",
    )
    monitor_common(msnap_p)
    msnap_p.add_argument("--json", action="store_true",
                         help="print the snapshot JSON document")
    msnap_p.add_argument("--out", default=None,
                         help="also write the snapshot JSON to this path")

    mrep_p = mon_sub.add_parser(
        "report",
        help="run once and write the self-contained HTML run report",
    )
    monitor_common(mrep_p)
    mrep_p.add_argument("--out", default="report.html",
                        help="HTML report destination")

    mserve_p = mon_sub.add_parser(
        "serve",
        help="run once, then serve /metrics over HTTP",
    )
    monitor_common(mserve_p)
    mserve_p.add_argument("--host", default="127.0.0.1",
                          help="bind address of the metrics endpoint")
    mserve_p.add_argument("--port", type=int, default=9464,
                          help="bind port (0 = ephemeral)")
    mserve_p.add_argument("--duration", type=float, default=None,
                          help="serve this many wall seconds, then exit "
                               "(default: until Ctrl-C)")

    mwatch_p = mon_sub.add_parser(
        "watch",
        help="watch a campaign directory: progress + worker-stall alerts",
    )
    mwatch_p.add_argument("--dir", required=True,
                          help="campaign directory (run store)")
    mwatch_p.add_argument("--interval", type=float, default=5.0,
                          help="refresh interval [wall s]")
    mwatch_p.add_argument("--iterations", type=int, default=0,
                          help="stop after N refreshes (0 = until Ctrl-C)")
    mwatch_p.add_argument("--stall-after", type=float, default=120.0,
                          help="heartbeat age that counts as a stall [s]")

    prof_p = sub.add_parser(
        "profile",
        help="distributed tracing & profiling: merged per-unit traces, "
             "critical path, flamegraphs, regression diffs "
             "(repro.telemetry.profile)",
    )
    prof_sub = prof_p.add_subparsers(dest="profile_command", required=True)

    prec_p = prof_sub.add_parser(
        "record",
        help="drain a campaign under one root trace context; one merged "
             "clock-aligned trace per unit under <dir>/traces/",
    )
    prec_p.add_argument("--spec", default=None,
                        help="campaign spec JSON (see docs/campaigns.md)")
    prec_p.add_argument("--dir", default=None,
                        help="campaign directory (run store)")
    prec_p.add_argument("--workers", type=int, default=1,
                        help="parallel worker processes (1 = serial)")
    prec_p.add_argument("--timeout", type=float, default=None,
                        help="per-unit wall-clock timeout [s]")
    prec_p.add_argument("--max-retries", type=int, default=2,
                        help="retries per unit after transient failures")
    prec_p.add_argument("--max-units", type=int, default=None,
                        help="execute at most N missing units (smoke tests)")
    prec_p.add_argument("--seed", default=None,
                        help="trace-context seed (same seed = same trace "
                             "id; default: random)")
    prec_p.add_argument("--smoke", action="store_true",
                        help="self-contained 2-rank x 2-lane traced "
                             "campaign + correlation checks (CI gate)")

    pcp_p = prof_sub.add_parser(
        "critical-path",
        help="per-step gating rank of a merged trace",
    )
    pcp_p.add_argument("--trace", required=True,
                       help="merged trace JSONL (or a unit trace directory)")
    pcp_p.add_argument("--json", action="store_true",
                       help="print a stable machine-readable JSON document")

    pfl_p = prof_sub.add_parser(
        "flame",
        help="collapsed-stack flamegraph export of a merged trace",
    )
    pfl_p.add_argument("--trace", required=True,
                       help="merged trace JSONL (or a unit trace directory)")
    pfl_p.add_argument("--out", default=None,
                       help="write collapsed stacks here (default: stdout)")

    pdf_p = prof_sub.add_parser(
        "diff",
        help="per-function regression diff of two merged traces",
    )
    pdf_p.add_argument("baseline", help="baseline merged trace (A)")
    pdf_p.add_argument("candidate", help="candidate merged trace (B)")
    pdf_p.add_argument("--threshold", type=float, default=0.02,
                       help="relative slowdown that counts as a regression")
    pdf_p.add_argument("--json", action="store_true",
                       help="print a stable machine-readable JSON document")

    return parser


COMMANDS = {
    "systems": cmd_systems,
    "calibrate": cmd_calibrate,
    "report": cmd_report,
    "diff": cmd_diff,
    "run": cmd_run,
    "tune": cmd_tune,
    "compare": cmd_compare,
    "sacct": cmd_sacct,
    "trace": cmd_trace,
    "faults": cmd_faults,
    "campaign": cmd_campaign,
    "serve": cmd_serve,
    "monitor": cmd_monitor,
    "profile": cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
